// Package memcached implements the baseline caching system the paper
// compares DIESEL's task-grained distributed cache against (§6.1): a
// cluster of memcached-style cache servers behind a Twemproxy-style
// consistent-hash router.
//
// The baseline's defining properties are reproduced faithfully because
// they drive the comparison's shape:
//
//   - file-granular storage: every cached object is one small file, so
//     loading a dataset costs one RPC per file (slow caching, Figure 11b);
//   - no batch write: libMemcached has no batch mode, so every write is
//     one network round trip (Figure 9);
//   - consistent hashing over server nodes: a dead node turns its share
//     of the keyspace into misses that must be served by the slow backing
//     store (Figure 6);
//   - bounded memory with LRU eviction per node.
package memcached

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"diesel/internal/wire"
)

const (
	methodGet    = "mc.get"
	methodSet    = "mc.set"
	methodDelete = "mc.delete"
	methodFlush  = "mc.flush"
	methodStats  = "mc.stats"
)

// ErrCacheMiss is returned by Get when the key is absent (or its node is
// unreachable, from the Router's point of view — the caller cannot tell a
// miss from a dead shard, which is exactly the paper's failure mode).
var ErrCacheMiss = errors.New("memcached: cache miss")

// --- server ---

// Server is one memcached node: an LRU-bounded in-memory object cache.
type Server struct {
	rpc  *wire.Server
	addr string

	mu       sync.Mutex
	capacity int64
	used     int64
	items    map[string]*entry
	head     *entry // most recently used
	tail     *entry // least recently used

	hits, misses, evictions uint64
}

type entry struct {
	key        string
	value      []byte
	prev, next *entry
}

// NewServer starts a cache node with the given memory capacity in bytes
// (0 = unlimited).
func NewServer(addr string, capacity int64) (*Server, error) {
	s := &Server{capacity: capacity, items: make(map[string]*entry)}
	s.rpc = wire.NewServer()
	s.register()
	bound, err := s.rpc.Listen(addr)
	if err != nil {
		return nil, err
	}
	s.addr = bound
	return s, nil
}

// Addr returns the node's bound address.
func (s *Server) Addr() string { return s.addr }

// Close kills the node.
func (s *Server) Close() error { return s.rpc.Close() }

// ItemCount returns the number of cached objects.
func (s *Server) ItemCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// UsedBytes returns cached payload bytes.
func (s *Server) UsedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// unlink removes e from the LRU list; caller holds s.mu.
func (s *Server) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e most-recently-used; caller holds s.mu.
func (s *Server) pushFront(e *entry) {
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Server) set(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.items[key]; ok {
		s.unlink(old)
		s.used -= int64(len(old.value))
		delete(s.items, key)
	}
	if s.capacity > 0 && int64(len(value)) > s.capacity {
		return // object larger than the node; memcached drops it, evicting nothing
	}
	e := &entry{key: key, value: value}
	if s.capacity > 0 {
		for s.used+int64(len(value)) > s.capacity && s.tail != nil {
			victim := s.tail
			s.unlink(victim)
			delete(s.items, victim.key)
			s.used -= int64(len(victim.value))
			s.evictions++
		}
	}
	s.items[key] = e
	s.pushFront(e)
	s.used += int64(len(value))
}

func (s *Server) get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.unlink(e)
	s.pushFront(e)
	s.hits++
	return e.value, true
}

func (s *Server) delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok {
		return false
	}
	s.unlink(e)
	delete(s.items, key)
	s.used -= int64(len(e.value))
	return true
}

func (s *Server) register() {
	s.rpc.Handle(methodSet, func(p []byte) ([]byte, error) {
		d := wire.NewDecoder(p)
		key := d.String()
		val := d.Bytes32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		s.set(key, append([]byte(nil), val...))
		return nil, nil
	})
	s.rpc.Handle(methodGet, func(p []byte) ([]byte, error) {
		d := wire.NewDecoder(p)
		key := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		v, ok := s.get(key)
		e := wire.NewEncoder(len(v) + 8)
		e.Bool(ok)
		e.Bytes32(v)
		return e.Bytes(), nil
	})
	s.rpc.Handle(methodDelete, func(p []byte) ([]byte, error) {
		d := wire.NewDecoder(p)
		key := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		ok := s.delete(key)
		e := wire.NewEncoder(1)
		e.Bool(ok)
		return e.Bytes(), nil
	})
	s.rpc.Handle(methodFlush, func(p []byte) ([]byte, error) {
		s.mu.Lock()
		s.items = make(map[string]*entry)
		s.head, s.tail = nil, nil
		s.used = 0
		s.mu.Unlock()
		return nil, nil
	})
	s.rpc.Handle(methodStats, func(p []byte) ([]byte, error) {
		s.mu.Lock()
		e := wire.NewEncoder(32)
		e.Uint64(s.hits)
		e.Uint64(s.misses)
		e.Uint64(s.evictions)
		e.Uint64(uint64(len(s.items)))
		s.mu.Unlock()
		return e.Bytes(), nil
	})
}

// --- router (Twemproxy substitute) ---

// Router maps keys to cache nodes with a ketama-style consistent-hash
// ring and forwards one RPC per operation.
type Router struct {
	nodes []string
	ring  []ringPoint

	mu    sync.RWMutex
	pools map[string]*wire.Pool

	// Stats for experiments.
	Hits, Misses, Errors uint64
	smu                  sync.Mutex
}

type ringPoint struct {
	hash uint32
	node string
}

// vnodesPerServer spreads each server over the ring for balance, like
// Twemproxy's ketama configuration (160 points per server).
const vnodesPerServer = 160

// NewRouter builds a router over the given cache-node addresses.
func NewRouter(addrs []string) (*Router, error) {
	if len(addrs) == 0 {
		return nil, errors.New("memcached: no cache nodes")
	}
	r := &Router{nodes: append([]string(nil), addrs...), pools: make(map[string]*wire.Pool)}
	for _, a := range addrs {
		for v := range vnodesPerServer {
			r.ring = append(r.ring, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", a, v)), node: a})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].hash < r.ring[j].hash })
	return r, nil
}

// hashKey is FNV-1a 64-bit passed through a murmur3-style finalizer and
// folded to 32 bits — a stand-in for ketama's md5-derived ring points.
// The finalizer matters: raw FNV of near-identical strings (sequential
// file names, addresses differing only in the port) clusters on the
// ring, which skews shard placement.
func hashKey(s string) uint32 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return uint32(h>>32) ^ uint32(h)
}

// NodeFor returns the cache node owning key.
func (r *Router) NodeFor(key string) string {
	h := hashKey(key)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].node
}

func (r *Router) pool(addr string) (*wire.Pool, error) {
	r.mu.RLock()
	p, ok := r.pools[addr]
	r.mu.RUnlock()
	if ok {
		return p, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.pools[addr]; ok {
		return p, nil
	}
	p, err := wire.DialPool(addr, 2)
	if err != nil {
		return nil, err
	}
	r.pools[addr] = p
	return p, nil
}

// Set stores value under key — one RPC, no batching (the baseline's write
// bottleneck).
func (r *Router) Set(key string, value []byte) error {
	p, err := r.pool(r.NodeFor(key))
	if err != nil {
		return err
	}
	e := wire.NewEncoder(len(key) + len(value) + 16)
	e.String(key)
	e.Bytes32(value)
	_, err = p.Call(methodSet, e.Bytes())
	return err
}

// Get fetches key. A dead node or an absent key both surface as
// ErrCacheMiss: the router cannot distinguish them, so callers fall back
// to the slow backing store either way (Figure 6's collapse).
func (r *Router) Get(key string) ([]byte, error) {
	p, err := r.pool(r.NodeFor(key))
	if err != nil {
		r.count(&r.Errors)
		return nil, ErrCacheMiss
	}
	e := wire.NewEncoder(len(key) + 8)
	e.String(key)
	resp, err := p.Call(methodGet, e.Bytes())
	if err != nil {
		r.count(&r.Errors)
		return nil, ErrCacheMiss
	}
	d := wire.NewDecoder(resp)
	ok := d.Bool()
	v := append([]byte(nil), d.Bytes32()...)
	if err := d.Err(); err != nil || !ok {
		r.count(&r.Misses)
		return nil, ErrCacheMiss
	}
	r.count(&r.Hits)
	return v, nil
}

// Delete removes key.
func (r *Router) Delete(key string) error {
	p, err := r.pool(r.NodeFor(key))
	if err != nil {
		return err
	}
	e := wire.NewEncoder(len(key) + 8)
	e.String(key)
	_, err = p.Call(methodDelete, e.Bytes())
	return err
}

func (r *Router) count(c *uint64) {
	r.smu.Lock()
	*c++
	r.smu.Unlock()
}

// HitRate returns hits/(hits+misses+errors) so far.
func (r *Router) HitRate() float64 {
	r.smu.Lock()
	defer r.smu.Unlock()
	total := r.Hits + r.Misses + r.Errors
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// Close tears down connections.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, p := range r.pools {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.pools = make(map[string]*wire.Pool)
	return first
}
