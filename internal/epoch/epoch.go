// Package epoch implements the pipelined epoch read path of a DIESEL
// training task: the consumer of a chunk-wise shuffle plan (§4.3,
// Figure 8).
//
// DIESEL's headline win is turning shuffled small-file reads into large
// sequential chunk reads (Table 2). The shuffle plan already guarantees
// that consecutive positions stay within one group of chunks; what is
// left on the table without this package is *overlap* — the network fetch
// of group k+1 hiding behind the consumption of group k, which is where
// most of the wall-clock saving of a network loader lives. An EpochReader
// prefetches whole groups a bounded window ahead with backpressure,
// decodes files in exact plan order, and serves them through a simple
// iterator, propagating one context end to end so a cancelled training
// loop abandons in-flight RPCs instead of leaking them.
//
// The fetch strategy is pluggable (Source): ClientSource pulls whole
// chunks from the DIESEL servers (DL_get_chunk) and slices files locally,
// CacheSource reads through the task-grained distributed cache when the
// task has one joined.
package epoch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"diesel/internal/meta"
	"diesel/internal/shuffle"
	"diesel/internal/tracing"
)

// Sample is one file served in epoch order.
type Sample struct {
	Pos   int    // position in the epoch order (index into plan.Files)
	Group int    // plan group the position belongs to
	Path  string // full file path
	Data  []byte // file contents
}

// ErrClosed is returned by Next after Close (or after the reader's
// context is cancelled).
var ErrClosed = errors.New("epoch: reader closed")

// Option configures a Reader (functional options, matching the style of
// internal/wire).
type Option func(*config)

type config struct {
	ctx      context.Context
	window   int
	reorder  int           // groups servable ahead of the oldest unserved (0 = exact order)
	deadline time.Duration // per-ReadGroup-attempt timeout (0 = none)

	hedge      bool          // reissue straggling fetches after the adaptive delay
	hedgeSrc   Source        // secondary source for hedges (nil = primary again)
	hedgeFloor time.Duration // lower bound of the hedge delay
}

// WithWindow bounds how many groups may be fetched ahead of the one being
// consumed — the pipeline's memory footprint is window+1 groups of files.
// Window 0 is fully synchronous: each group is fetched only when the
// consumer reaches it (no overlap, the baseline the benchmarks compare
// against). Default 2.
//
// With a capacity-bounded task cache, window×groupSize+groupSize chunks
// must fit the cache or prefetch evicts the group being read.
func WithWindow(n int) Option {
	return func(c *config) {
		if n >= 0 {
			c.window = n
		}
	}
}

// WithReorderWindow lets Next serve samples from whichever of the next
// k+1 prefetched groups completed first: a group may be delivered at most
// k groups ahead of the oldest not-yet-served one, so a straggling fetch
// no longer blocks the groups that finished behind it. Within each group
// samples stay in plan order, and Sample.Pos always carries the exact
// plan position, so consumers that need the global order can either keep
// the default k=0 (byte-for-byte identical to the strict reader) or
// reorder by Pos themselves. "Hiding Latencies in Network-Based Image
// Loading" shows DL training tolerates exactly this bounded reordering —
// the shuffle already randomized the order, so a bounded, shuffle-seeded
// permutation of group delivery is statistically invisible to SGD.
//
// Reordering needs a pipeline to reorder: with window 0 (synchronous
// fetches) k is ignored.
func WithReorderWindow(k int) Option {
	return func(c *config) {
		if k >= 0 {
			c.reorder = k
		}
	}
}

// WithGroupDeadline bounds every group-fetch attempt with its own
// timeout: a wedged fetch degrades to the hedge (or one fresh-context
// retry when hedging is off) instead of occupying a window slot until the
// epoch's own context dies. Zero disables (the default).
func WithGroupDeadline(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.deadline = d
		}
	}
}

// WithHedge enables hedged group fetches: when a fetch outlives
// max(floor, rolling p99 of this reader's attempt latencies), the group
// is reissued through secondary — or through the primary source again
// with a fresh context when secondary is nil — and the first success
// wins; the loser is cancelled and its result dropped. secondary must be
// safe for concurrent use alongside the primary.
func WithHedge(secondary Source) Option {
	return func(c *config) {
		c.hedge = true
		c.hedgeSrc = secondary
	}
}

// WithHedgeDelayFloor sets the minimum hedge delay (default
// DefaultHedgeDelayFloor). The floor carries the cold start — before the
// rolling p99 has samples — and guards very fast sources against hedging
// every read.
func WithHedgeDelayFloor(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.hedgeFloor = d
		}
	}
}

// WithContext attaches a context to the whole epoch: cancellation or
// deadline expiry stops the prefetch pipeline and propagates to every
// in-flight RPC (client → wire.CallContext), so Next returns within one
// call round trip of the cancellation.
func WithContext(ctx context.Context) Option {
	return func(c *config) {
		if ctx != nil {
			c.ctx = ctx
		}
	}
}

type groupResult struct {
	data [][]byte
	err  error
	sp   *tracing.Span // the group's fetch span (ended), for stall exemplars
}

// Reader streams one epoch in plan order while prefetching whole chunk
// groups ahead of the consumer. Next must be called from one goroutine;
// Close may be called from any goroutine at any time.
type Reader struct {
	plan *shuffle.Plan
	snap *meta.Snapshot
	src  Source
	cfg  config

	ctx    context.Context
	cancel context.CancelFunc

	results []chan groupResult // one slot per group, buffered(1)
	sem     chan struct{}      // bounds groups in flight or ready ahead
	wg      sync.WaitGroup
	closing sync.Once

	// Tail-latency machinery (hedge.go).
	delay    delayTracker   // adaptive hedge delay: max(floor, rolling p99)
	attempts attemptTracker // joins straggling hedge/deadline attempts on Close

	// completed carries group indices in completion order when the
	// reorder window is open (buffered len(Groups): workers never block).
	completed chan int

	// Consumer state, owned by Next's caller.
	cur       [][]byte // current group's payloads, nil'd as consumed
	curStart  int      // plan position of cur[0]
	curGroup  int      // plan group index of cur
	offset    int      // next index within cur
	nextGroup int      // strict order: next group to take from the pipeline
	err       error    // terminal error (never io.EOF)

	// Reorder-window consumer state (reorderOn only).
	held      map[int]groupResult // completed groups awaiting an eligible slot
	heldOrder []int               // completion order of the held groups
	served    []bool              // per-group served marks
	low       int                 // smallest unserved group index
	servedN   int                 // groups installed as current so far
}

// NewReader starts the pipeline over one epoch plan. The snapshot must be
// the one the plan was built from; src decides where the bytes come from.
func NewReader(plan *shuffle.Plan, snap *meta.Snapshot, src Source, opts ...Option) *Reader {
	cfg := config{ctx: context.Background(), window: 2}
	for _, fn := range opts {
		fn(&cfg)
	}
	if cfg.window <= 0 {
		cfg.reorder = 0 // nothing to reorder without a pipeline
	}
	if cfg.hedge && cfg.hedgeFloor <= 0 {
		cfg.hedgeFloor = DefaultHedgeDelayFloor
	}
	ctx, cancel := context.WithCancel(cfg.ctx)
	r := &Reader{
		plan: plan, snap: snap, src: src, cfg: cfg,
		ctx: ctx, cancel: cancel,
	}
	r.delay.floor = cfg.hedgeFloor
	if r.reorderOn() {
		r.held = make(map[int]groupResult)
		r.served = make([]bool, len(plan.Groups))
	}
	if cfg.window > 0 && len(plan.Groups) > 0 {
		r.start()
	}
	return r
}

// reorderOn reports whether the bounded out-of-order delivery path is
// active.
func (r *Reader) reorderOn() bool {
	return r.cfg.window > 0 && r.cfg.reorder > 0
}

// start launches the dispatcher and fetch workers. The dispatcher admits
// one group per window slot; the consumer releases a slot as it takes
// each group, keeping the window sliding. Workers fetch whole groups
// concurrently, so a window of w overlaps up to w group fetches.
func (r *Reader) start() {
	nGroups := len(r.plan.Groups)
	r.results = make([]chan groupResult, nGroups)
	for i := range r.results {
		r.results[i] = make(chan groupResult, 1)
	}
	if r.reorderOn() {
		r.completed = make(chan int, nGroups)
	}
	r.sem = make(chan struct{}, r.cfg.window)
	jobs := make(chan int)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(jobs)
		for g := range nGroups {
			select {
			case r.sem <- struct{}{}:
			case <-r.ctx.Done():
				return
			}
			select {
			case jobs <- g:
			case <-r.ctx.Done():
				return
			}
		}
	}()
	workers := min(r.cfg.window, nGroups)
	for range workers {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for g := range jobs {
				res := r.fetchGroup(g)
				mDepth.Add(1)
				r.results[g] <- res // buffered(1): never blocks
				if r.completed != nil {
					r.completed <- g // buffered(nGroups): never blocks
				}
			}
		}()
	}
}

// fetchGroup runs one traced group fetch — hedged and deadline-bounded
// when configured (hedge.go) — and records the shared fetch metrics.
// Both the prefetch workers and the window=0 inline path go through it,
// so diesel_epoch_group_fetch_seconds is populated in every
// configuration, including the synchronous baseline the benchmarks
// compare pipelined runs against.
func (r *Reader) fetchGroup(g int) groupResult {
	// Each group fetch is its own trace root: one epoch is unbounded in
	// spans, one group is not, and the slow unit worth attributing is
	// the group.
	gctx, gsp := tracing.StartSpan(r.ctx, "epoch.group")
	if gsp != nil {
		gsp.SetAttr("group", strconv.Itoa(g))
		gs := r.plan.Groups[g]
		gsp.SetAttr("files", strconv.Itoa(gs.End-gs.Start))
		if r.cfg.window <= 0 {
			gsp.SetAttr("window", "0")
		}
	}
	start := time.Now()
	data, err := r.readGroup(gctx, g)
	d := time.Since(start)
	mGroupFetchLat.ObserveDuration(d)
	gsp.SetError(err)
	gsp.End()
	tracing.ObserveSlow(gsp, "diesel_epoch_group_fetch_seconds", d)
	if err == nil {
		mGroups.Inc()
	}
	return groupResult{data: data, err: err, sp: gsp}
}

// Next returns the next sample in plan order. It returns io.EOF when the
// epoch is complete, ErrClosed after Close or context cancellation, and
// the fetch error that ended the epoch otherwise (also available via Err).
func (r *Reader) Next() (Sample, error) {
	if r.err != nil {
		return Sample{}, r.err
	}
	if r.ctx.Err() != nil {
		// Closed (or caller-cancelled) between calls: don't keep serving
		// the buffered remainder of the current group.
		return Sample{}, r.fail(fmt.Errorf("%w: %w", ErrClosed, context.Cause(r.ctx)))
	}
	for r.cur == nil || r.offset >= len(r.cur) {
		if r.groupsDone() {
			return Sample{}, io.EOF
		}
		if err := r.advance(); err != nil {
			return Sample{}, err
		}
	}
	pos := r.curStart + r.offset
	s := Sample{
		Pos:   pos,
		Group: r.curGroup,
		Path:  r.snap.FileName(int(r.plan.Files[pos])),
		Data:  r.cur[r.offset],
	}
	r.cur[r.offset] = nil // let consumed payloads be collected mid-group
	r.offset++
	mSamples.Inc()
	mBytes.Add(uint64(len(s.Data)))
	return s, nil
}

// groupsDone reports whether every plan group has been installed as the
// current group (the epoch-complete condition ahead of io.EOF).
func (r *Reader) groupsDone() bool {
	if r.reorderOn() {
		return r.servedN >= len(r.plan.Groups)
	}
	return r.nextGroup >= len(r.plan.Groups)
}

// advance blocks until the next group is ready (fetching it inline when
// the window is 0) and installs it as the current group. The time spent
// blocked here is the pipeline's exposed stall — the quantity prefetch
// exists to hide.
func (r *Reader) advance() error {
	if r.reorderOn() {
		return r.advanceReorder()
	}
	g := r.nextGroup
	start := time.Now()
	var res groupResult
	if r.cfg.window <= 0 {
		res = r.fetchGroup(g)
	} else {
		select {
		case res = <-r.results[g]:
			mDepth.Add(-1)
			<-r.sem // free the window slot this group occupied
		case <-r.ctx.Done():
			return r.fail(fmt.Errorf("%w: %w", ErrClosed, context.Cause(r.ctx)))
		}
	}
	return r.install(g, res, start)
}

// advanceReorder is advance for the bounded out-of-order path: it serves
// the earliest-*completed* group whose index is within reorder groups of
// the oldest unserved one, blocking on the completion stream when no held
// group is eligible. Liveness: the dispatcher admits groups in index
// order, so the oldest unserved group is always dispatched no later than
// any held group — whenever held groups are all too far ahead, the group
// that would unblock them is in flight.
func (r *Reader) advanceReorder() error {
	start := time.Now()
	for {
		limit := r.low + r.cfg.reorder
		for i, g := range r.heldOrder {
			if g <= limit {
				res := r.held[g]
				delete(r.held, g)
				r.heldOrder = append(r.heldOrder[:i], r.heldOrder[i+1:]...)
				return r.install(g, res, start)
			}
		}
		select {
		case g := <-r.completed:
			// The result send happens before the completion announcement,
			// so this receive never blocks.
			res := <-r.results[g]
			mDepth.Add(-1)
			if g <= limit {
				return r.install(g, res, start)
			}
			r.held[g] = res
			r.heldOrder = append(r.heldOrder, g)
		case <-r.ctx.Done():
			return r.fail(fmt.Errorf("%w: %w", ErrClosed, context.Cause(r.ctx)))
		}
	}
}

// install records the stall, surfaces fetch errors, and makes group g the
// current group. start is when the consumer began waiting.
func (r *Reader) install(g int, res groupResult, start time.Time) error {
	mStallLat.Since(start)
	// A slow stall means prefetch failed to hide this group's fetch; the
	// exemplar points at that group's trace, which shows why it was slow.
	tracing.ObserveSlow(res.sp, "diesel_epoch_stall_seconds", time.Since(start))
	if res.err != nil {
		if r.ctx.Err() != nil {
			return r.fail(fmt.Errorf("%w: %w", ErrClosed, res.err))
		}
		return r.fail(res.err)
	}
	span := r.plan.Groups[g]
	r.cur = res.data
	r.curStart = span.Start
	r.curGroup = g
	r.offset = 0
	if r.reorderOn() {
		if skew := g - r.low; skew > 0 {
			mReorderServed.Inc()
			mReorderSkew.Observe(uint64(skew))
		}
		r.served[g] = true
		for r.low < len(r.served) && r.served[r.low] {
			r.low++
		}
		r.servedN++
		<-r.sem // the slot stayed occupied while the group was held
	} else {
		r.nextGroup++
	}
	return nil
}

// fail records the terminal error (consumer-owned state), tears the
// pipeline down and returns the error.
func (r *Reader) fail(err error) error {
	r.err = err
	r.Close()
	return err
}

// Err returns the error that terminated the epoch, or nil after a clean
// run (io.EOF from Next is completion, not an error). Like Next, it
// belongs to the consuming goroutine.
func (r *Reader) Err() error {
	if errors.Is(r.err, ErrClosed) && r.cfg.ctx.Err() == nil {
		// Closed locally, not by the caller's context: not a data error.
		return nil
	}
	return r.err
}

// Close cancels the pipeline and waits for its goroutines to exit. Safe
// to call multiple times and concurrently with Next (which then returns
// ErrClosed). Close only cancels and waits; all iterator state stays
// owned by the consuming goroutine.
func (r *Reader) Close() error {
	r.closing.Do(func() { r.cancel() })
	r.wg.Wait()
	// Join straggling hedge/deadline attempts: their contexts are
	// cancelled (r.ctx is their ancestor), so each unwinds within one RPC
	// abort, and waiting here keeps the loser's goroutine, span and
	// buffers from outliving the reader.
	r.attempts.shutdown()
	// Drain ready groups so the depth gauge doesn't drift across epochs.
	// All worker sends happened-before wg.Wait returned, so non-blocking
	// receives observe every unconsumed result.
	for _, ch := range r.results {
		select {
		case <-ch:
			mDepth.Add(-1)
		default:
		}
	}
	return nil
}
