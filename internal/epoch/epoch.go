// Package epoch implements the pipelined epoch read path of a DIESEL
// training task: the consumer of a chunk-wise shuffle plan (§4.3,
// Figure 8).
//
// DIESEL's headline win is turning shuffled small-file reads into large
// sequential chunk reads (Table 2). The shuffle plan already guarantees
// that consecutive positions stay within one group of chunks; what is
// left on the table without this package is *overlap* — the network fetch
// of group k+1 hiding behind the consumption of group k, which is where
// most of the wall-clock saving of a network loader lives. An EpochReader
// prefetches whole groups a bounded window ahead with backpressure,
// decodes files in exact plan order, and serves them through a simple
// iterator, propagating one context end to end so a cancelled training
// loop abandons in-flight RPCs instead of leaking them.
//
// The fetch strategy is pluggable (Source): ClientSource pulls whole
// chunks from the DIESEL servers (DL_get_chunk) and slices files locally,
// CacheSource reads through the task-grained distributed cache when the
// task has one joined.
package epoch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"diesel/internal/meta"
	"diesel/internal/shuffle"
	"diesel/internal/tracing"
)

// Sample is one file served in epoch order.
type Sample struct {
	Pos   int    // position in the epoch order (index into plan.Files)
	Group int    // plan group the position belongs to
	Path  string // full file path
	Data  []byte // file contents
}

// ErrClosed is returned by Next after Close (or after the reader's
// context is cancelled).
var ErrClosed = errors.New("epoch: reader closed")

// Option configures a Reader (functional options, matching the style of
// internal/wire).
type Option func(*config)

type config struct {
	ctx    context.Context
	window int
}

// WithWindow bounds how many groups may be fetched ahead of the one being
// consumed — the pipeline's memory footprint is window+1 groups of files.
// Window 0 is fully synchronous: each group is fetched only when the
// consumer reaches it (no overlap, the baseline the benchmarks compare
// against). Default 2.
//
// With a capacity-bounded task cache, window×groupSize+groupSize chunks
// must fit the cache or prefetch evicts the group being read.
func WithWindow(n int) Option {
	return func(c *config) {
		if n >= 0 {
			c.window = n
		}
	}
}

// WithContext attaches a context to the whole epoch: cancellation or
// deadline expiry stops the prefetch pipeline and propagates to every
// in-flight RPC (client → wire.CallContext), so Next returns within one
// call round trip of the cancellation.
func WithContext(ctx context.Context) Option {
	return func(c *config) {
		if ctx != nil {
			c.ctx = ctx
		}
	}
}

type groupResult struct {
	data [][]byte
	err  error
	sp   *tracing.Span // the group's fetch span (ended), for stall exemplars
}

// Reader streams one epoch in plan order while prefetching whole chunk
// groups ahead of the consumer. Next must be called from one goroutine;
// Close may be called from any goroutine at any time.
type Reader struct {
	plan *shuffle.Plan
	snap *meta.Snapshot
	src  Source
	cfg  config

	ctx    context.Context
	cancel context.CancelFunc

	results []chan groupResult // one slot per group, buffered(1)
	sem     chan struct{}      // bounds groups in flight or ready ahead
	wg      sync.WaitGroup
	closing sync.Once

	// Consumer state, owned by Next's caller.
	cur       [][]byte // current group's payloads, nil'd as consumed
	curStart  int      // plan position of cur[0]
	curGroup  int      // plan group index of cur
	offset    int      // next index within cur
	nextGroup int      // next group to take from the pipeline
	err       error    // terminal error (never io.EOF)
}

// NewReader starts the pipeline over one epoch plan. The snapshot must be
// the one the plan was built from; src decides where the bytes come from.
func NewReader(plan *shuffle.Plan, snap *meta.Snapshot, src Source, opts ...Option) *Reader {
	cfg := config{ctx: context.Background(), window: 2}
	for _, fn := range opts {
		fn(&cfg)
	}
	ctx, cancel := context.WithCancel(cfg.ctx)
	r := &Reader{
		plan: plan, snap: snap, src: src, cfg: cfg,
		ctx: ctx, cancel: cancel,
	}
	if cfg.window > 0 && len(plan.Groups) > 0 {
		r.start()
	}
	return r
}

// start launches the dispatcher and fetch workers. The dispatcher admits
// one group per window slot; the consumer releases a slot as it takes
// each group, keeping the window sliding. Workers fetch whole groups
// concurrently, so a window of w overlaps up to w group fetches.
func (r *Reader) start() {
	nGroups := len(r.plan.Groups)
	r.results = make([]chan groupResult, nGroups)
	for i := range r.results {
		r.results[i] = make(chan groupResult, 1)
	}
	r.sem = make(chan struct{}, r.cfg.window)
	jobs := make(chan int)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(jobs)
		for g := range nGroups {
			select {
			case r.sem <- struct{}{}:
			case <-r.ctx.Done():
				return
			}
			select {
			case jobs <- g:
			case <-r.ctx.Done():
				return
			}
		}
	}()
	workers := min(r.cfg.window, nGroups)
	for range workers {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for g := range jobs {
				// Each group fetch is its own trace root: one epoch is
				// unbounded in spans, one group is not, and the slow unit
				// worth attributing is the group.
				gctx, gsp := tracing.StartSpan(r.ctx, "epoch.group")
				if gsp != nil {
					gsp.SetAttr("group", strconv.Itoa(g))
					gs := r.plan.Groups[g]
					gsp.SetAttr("files", strconv.Itoa(gs.End-gs.Start))
				}
				start := time.Now()
				data, err := r.src.ReadGroup(gctx, r.plan, g)
				mGroupFetchLat.Since(start)
				gsp.SetError(err)
				gsp.End()
				tracing.ObserveSlow(gsp, "diesel_epoch_group_fetch_seconds", time.Since(start))
				if err == nil {
					mGroups.Inc()
				}
				mDepth.Add(1)
				r.results[g] <- groupResult{data: data, err: err, sp: gsp} // buffered(1): never blocks
			}
		}()
	}
}

// Next returns the next sample in plan order. It returns io.EOF when the
// epoch is complete, ErrClosed after Close or context cancellation, and
// the fetch error that ended the epoch otherwise (also available via Err).
func (r *Reader) Next() (Sample, error) {
	if r.err != nil {
		return Sample{}, r.err
	}
	if r.ctx.Err() != nil {
		// Closed (or caller-cancelled) between calls: don't keep serving
		// the buffered remainder of the current group.
		return Sample{}, r.fail(fmt.Errorf("%w: %w", ErrClosed, context.Cause(r.ctx)))
	}
	for r.cur == nil || r.offset >= len(r.cur) {
		if r.nextGroup >= len(r.plan.Groups) {
			return Sample{}, io.EOF
		}
		if err := r.advance(); err != nil {
			return Sample{}, err
		}
	}
	pos := r.curStart + r.offset
	s := Sample{
		Pos:   pos,
		Group: r.curGroup,
		Path:  r.snap.FileName(int(r.plan.Files[pos])),
		Data:  r.cur[r.offset],
	}
	r.cur[r.offset] = nil // let consumed payloads be collected mid-group
	r.offset++
	mSamples.Inc()
	mBytes.Add(uint64(len(s.Data)))
	return s, nil
}

// advance blocks until the next group is ready (fetching it inline when
// the window is 0) and installs it as the current group. The time spent
// blocked here is the pipeline's exposed stall — the quantity prefetch
// exists to hide.
func (r *Reader) advance() error {
	g := r.nextGroup
	start := time.Now()
	var res groupResult
	if r.cfg.window <= 0 {
		gctx, gsp := tracing.StartSpan(r.ctx, "epoch.group")
		if gsp != nil {
			gsp.SetAttr("group", strconv.Itoa(g))
			gsp.SetAttr("window", "0")
		}
		res.data, res.err = r.src.ReadGroup(gctx, r.plan, g)
		gsp.SetError(res.err)
		gsp.End()
		res.sp = gsp
		if res.err == nil {
			mGroups.Inc()
		}
	} else {
		select {
		case res = <-r.results[g]:
			mDepth.Add(-1)
			<-r.sem // free the window slot this group occupied
		case <-r.ctx.Done():
			return r.fail(fmt.Errorf("%w: %w", ErrClosed, context.Cause(r.ctx)))
		}
	}
	mStallLat.Since(start)
	// A slow stall means prefetch failed to hide this group's fetch; the
	// exemplar points at that group's trace, which shows why it was slow.
	tracing.ObserveSlow(res.sp, "diesel_epoch_stall_seconds", time.Since(start))
	if res.err != nil {
		if r.ctx.Err() != nil {
			return r.fail(fmt.Errorf("%w: %w", ErrClosed, res.err))
		}
		return r.fail(res.err)
	}
	span := r.plan.Groups[g]
	r.cur = res.data
	r.curStart = span.Start
	r.curGroup = g
	r.offset = 0
	r.nextGroup++
	return nil
}

// fail records the terminal error (consumer-owned state), tears the
// pipeline down and returns the error.
func (r *Reader) fail(err error) error {
	r.err = err
	r.Close()
	return err
}

// Err returns the error that terminated the epoch, or nil after a clean
// run (io.EOF from Next is completion, not an error). Like Next, it
// belongs to the consuming goroutine.
func (r *Reader) Err() error {
	if errors.Is(r.err, ErrClosed) && r.cfg.ctx.Err() == nil {
		// Closed locally, not by the caller's context: not a data error.
		return nil
	}
	return r.err
}

// Close cancels the pipeline and waits for its goroutines to exit. Safe
// to call multiple times and concurrently with Next (which then returns
// ErrClosed). Close only cancels and waits; all iterator state stays
// owned by the consuming goroutine.
func (r *Reader) Close() error {
	r.closing.Do(func() { r.cancel() })
	r.wg.Wait()
	// Drain ready groups so the depth gauge doesn't drift across epochs.
	// All worker sends happened-before wg.Wait returned, so non-blocking
	// receives observe every unconsumed result.
	for _, ch := range r.results {
		select {
		case <-ch:
			mDepth.Add(-1)
		default:
		}
	}
	return nil
}
