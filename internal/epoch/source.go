package epoch

import (
	"context"
	"fmt"
	"sync"

	"diesel/internal/chunk"
	"diesel/internal/client"
	"diesel/internal/meta"
	"diesel/internal/shuffle"
)

// Source fetches the payloads of one plan group. Implementations decide
// the transfer granularity: whole chunks from the servers (ClientSource)
// or per-file reads through the task-grained cache (CacheSource). A
// Source must be safe for concurrent ReadGroup calls — the reader's
// window overlaps group fetches.
type Source interface {
	// ReadGroup returns the payloads of plan positions
	// [plan.Groups[g].Start, plan.Groups[g].End) in plan order.
	//
	// Returned payloads are read-only: sources may hand out windows into
	// a shared backing buffer (a fetched chunk, a cached chunk) instead
	// of per-file copies, so consumers that mutate or retain bytes past
	// the sample they came with must copy them first.
	ReadGroup(ctx context.Context, plan *shuffle.Plan, g int) ([][]byte, error)
}

// FileReader is the cache-side read surface CacheSource needs;
// *dcache.Peer implements it (and so does any client.ContextReader).
type FileReader interface {
	ReadFileContext(ctx context.Context, path string) ([]byte, error)
}

// ViewReader is the zero-copy upgrade of FileReader: ReadFileViewContext
// may return a read-only window into a cached chunk instead of an owned
// copy. CacheSource detects it with a type assertion, so a *dcache.Peer
// source serves cache-hit epochs copy-free while plain FileReaders keep
// working unchanged.
type ViewReader interface {
	ReadFileViewContext(ctx context.Context, path string) ([]byte, error)
}

// ClientSource feeds an epoch reader straight from the DIESEL servers:
// each group fetch pulls the group's chunks whole (DL_get_chunk — the
// large sequential read of Table 2) and slices the files out locally
// using snapshot metadata. If a chunk cannot be fetched or parsed (e.g.
// purged mid-epoch), its files are re-read through the batched file API
// instead, so one stale chunk degrades to a batch RPC rather than
// failing the epoch.
type ClientSource struct {
	cl       *client.Client
	snap     *meta.Snapshot
	parallel int
}

// NewClientSource builds a server-direct source. parallel bounds the
// concurrent chunk fetches within one group (<=0 means 4).
func NewClientSource(cl *client.Client, snap *meta.Snapshot, parallel int) *ClientSource {
	if parallel <= 0 {
		parallel = 4
	}
	return &ClientSource{cl: cl, snap: snap, parallel: parallel}
}

// ReadGroup implements Source.
func (s *ClientSource) ReadGroup(ctx context.Context, plan *shuffle.Plan, g int) ([][]byte, error) {
	span := plan.Groups[g]

	// Fetch the group's chunks concurrently, bounded by parallel.
	chunks := make(map[int32]*fetched, len(span.Chunks))
	for _, ci := range span.Chunks {
		chunks[ci] = &fetched{}
	}
	sem := make(chan struct{}, s.parallel)
	var wg sync.WaitGroup
	for _, ci := range span.Chunks {
		wg.Add(1)
		go func(ci int32) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f := chunks[ci]
			blob, err := s.cl.GetChunkContext(ctx, s.snap.Chunks[ci].ID.String())
			if err != nil {
				f.err = err
				return
			}
			f.ck, f.err = chunk.Parse(blob)
		}(ci)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Files whose chunk failed fall back to one batched read.
	out := make([][]byte, span.End-span.Start)
	var missPos []int
	for pos := span.Start; pos < span.End; pos++ {
		m := s.snap.FileMetaAt(int(plan.Files[pos]))
		f := chunks[int32(m.ChunkIdx)]
		if f == nil || f.err != nil || f.ck == nil {
			missPos = append(missPos, pos)
			continue
		}
		pay := f.ck.Payload()
		if m.Offset+m.Length > uint64(len(pay)) {
			return nil, fmt.Errorf("epoch: file %q range [%d,%d) outside chunk payload %d",
				s.snap.FileName(int(plan.Files[pos])), m.Offset, m.Offset+m.Length, len(pay))
		}
		// Emit a view into the fetched chunk, not a copy: the group's
		// files collectively keep the chunk blob alive, and the full
		// slice expression keeps an append by a consumer from bleeding
		// into the next file's bytes.
		out[pos-span.Start] = pay[m.Offset : m.Offset+m.Length : m.Offset+m.Length]
	}
	if len(missPos) > 0 {
		paths := make([]string, len(missPos))
		for i, pos := range missPos {
			paths[i] = s.snap.FileName(int(plan.Files[pos]))
		}
		mChunkFallbacks.Add(uint64(len(missPos)))
		batch, err := s.cl.GetBatchContext(ctx, paths)
		if err != nil {
			return nil, joinChunkErrors(chunks, err)
		}
		for i, pos := range missPos {
			if batch[i] == nil {
				return nil, joinChunkErrors(chunks,
					fmt.Errorf("epoch: file %q missing from batch fallback", paths[i]))
			}
			out[pos-span.Start] = batch[i]
		}
	}
	return out, nil
}

// fetched is one chunk's fetch-and-parse outcome within a group read.
type fetched struct {
	ck  *chunk.Chunk
	err error
}

// joinChunkErrors decorates a fallback failure with the chunk errors that
// forced the fallback, so the surfaced error names the root cause.
func joinChunkErrors(chunks map[int32]*fetched, err error) error {
	for _, f := range chunks {
		if f.err != nil {
			return fmt.Errorf("%w (chunk fetch: %w)", err, f.err)
		}
	}
	return err
}

// CacheSource feeds an epoch reader through the task-grained distributed
// cache: each file goes to its owning master in one hop (Figure 7), and
// prefetching a group ahead pulls the group's chunks into the cache
// before the consumer arrives. parallel bounds concurrent file reads
// within one group.
type CacheSource struct {
	fr       FileReader
	read     func(ctx context.Context, path string) ([]byte, error)
	snap     *meta.Snapshot
	parallel int
}

// NewCacheSource builds a cache-backed source (fr is typically a
// *dcache.Peer). parallel <=0 means 8. A FileReader that also implements
// ViewReader is read through its zero-copy path: ReadGroup's contract
// already declares payloads read-only, so local cache hits can skip the
// defensive copy.
func NewCacheSource(fr FileReader, snap *meta.Snapshot, parallel int) *CacheSource {
	if parallel <= 0 {
		parallel = 8
	}
	read := fr.ReadFileContext
	if vr, ok := fr.(ViewReader); ok {
		read = vr.ReadFileViewContext
	}
	return &CacheSource{fr: fr, read: read, snap: snap, parallel: parallel}
}

// ReadGroup implements Source.
func (s *CacheSource) ReadGroup(ctx context.Context, plan *shuffle.Plan, g int) ([][]byte, error) {
	span := plan.Groups[g]
	out := make([][]byte, span.End-span.Start)
	errs := make([]error, span.End-span.Start)
	sem := make(chan struct{}, s.parallel)
	var wg sync.WaitGroup
	for pos := span.Start; pos < span.End; pos++ {
		wg.Add(1)
		go func(pos int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				errs[pos-span.Start] = ctx.Err()
				return
			}
			path := s.snap.FileName(int(plan.Files[pos]))
			out[pos-span.Start], errs[pos-span.Start] = s.read(ctx, path)
		}(pos)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("epoch: read %q: %w",
				s.snap.FileName(int(plan.Files[span.Start+i])), err)
		}
	}
	return out, nil
}
