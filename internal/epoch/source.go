package epoch

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"diesel/internal/chunk"
	"diesel/internal/meta"
	"diesel/internal/shuffle"
)

// Source fetches the payloads of one plan group. Implementations decide
// the transfer granularity: whole chunks from the servers (ClientSource)
// or per-file reads through the task-grained cache (CacheSource). A
// Source must be safe for concurrent ReadGroup calls — the reader's
// window overlaps group fetches.
type Source interface {
	// ReadGroup returns the payloads of plan positions
	// [plan.Groups[g].Start, plan.Groups[g].End) in plan order.
	//
	// Returned payloads are read-only: sources may hand out windows into
	// a shared backing buffer (a fetched chunk, a cached chunk) instead
	// of per-file copies, so consumers that mutate or retain bytes past
	// the sample they came with must copy them first.
	ReadGroup(ctx context.Context, plan *shuffle.Plan, g int) ([][]byte, error)
}

// FileReader is the cache-side read surface CacheSource needs;
// *dcache.Peer implements it (and so does any client.ContextReader).
type FileReader interface {
	ReadFileContext(ctx context.Context, path string) ([]byte, error)
}

// ViewReader is the zero-copy upgrade of FileReader: ReadFileViewContext
// may return a read-only window into a cached chunk instead of an owned
// copy. CacheSource detects it with a type assertion, so a *dcache.Peer
// source serves cache-hit epochs copy-free while plain FileReaders keep
// working unchanged.
type ViewReader interface {
	ReadFileViewContext(ctx context.Context, path string) ([]byte, error)
}

// ChunkClient is the server-direct read surface ClientSource needs:
// whole-chunk fetches plus the batched file API it degrades to.
// *client.Dataset implements it.
type ChunkClient interface {
	GetChunk(ctx context.Context, chunkID string) ([]byte, error)
	GetBatch(ctx context.Context, paths []string) ([][]byte, error)
}

// ClientSource feeds an epoch reader straight from the DIESEL servers:
// each group fetch pulls the group's chunks whole (DL_get_chunk — the
// large sequential read of Table 2) and slices the files out locally
// using snapshot metadata. If a chunk cannot be fetched or parsed (e.g.
// purged mid-epoch), or the snapshot's file metadata no longer fits the
// chunk's payload (repacked mid-epoch), the affected files are re-read
// through the batched file API instead, so one stale chunk degrades to a
// batch RPC rather than failing the epoch.
type ClientSource struct {
	cl       ChunkClient
	snap     *meta.Snapshot
	parallel int
}

// NewClientSource builds a server-direct source (cl is typically a
// *client.Dataset handle). parallel bounds the concurrent chunk fetches within
// one group (<=0 means 4).
func NewClientSource(cl ChunkClient, snap *meta.Snapshot, parallel int) *ClientSource {
	if parallel <= 0 {
		parallel = 4
	}
	return &ClientSource{cl: cl, snap: snap, parallel: parallel}
}

// ReadGroup implements Source.
func (s *ClientSource) ReadGroup(ctx context.Context, plan *shuffle.Plan, g int) ([][]byte, error) {
	span := plan.Groups[g]

	// Fetch the group's chunks concurrently, bounded by parallel.
	chunks := make(map[int32]*fetched, len(span.Chunks))
	for _, ci := range span.Chunks {
		chunks[ci] = &fetched{}
	}
	// Acquire a slot before spawning, so a group never holds more than
	// parallel fetch goroutines at once.
	sem := make(chan struct{}, s.parallel)
	var wg sync.WaitGroup
	for _, ci := range span.Chunks {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break // the post-wait ctx check surfaces the cancellation
		}
		wg.Add(1)
		go func(ci int32) {
			defer wg.Done()
			defer func() { <-sem }()
			f := chunks[ci]
			blob, err := s.cl.GetChunk(ctx, s.snap.Chunks[ci].ID.String())
			if err != nil {
				f.err = err
				return
			}
			f.ck, f.err = chunk.Parse(blob)
		}(ci)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Files whose chunk failed fall back to one batched read.
	out := make([][]byte, span.End-span.Start)
	var missPos []int
	for pos := span.Start; pos < span.End; pos++ {
		m := s.snap.FileMetaAt(int(plan.Files[pos]))
		f := chunks[int32(m.ChunkIdx)]
		if f == nil || f.err != nil || f.ck == nil {
			missPos = append(missPos, pos)
			continue
		}
		pay := f.ck.Payload()
		if m.Offset+m.Length > uint64(len(pay)) {
			// Stale snapshot metadata: the chunk on the server no longer
			// holds this file where the snapshot says (purged/repacked
			// mid-epoch, or a truncated blob). The documented contract is
			// that a stale chunk degrades to the batched file API, not
			// that it fails the epoch — route the file into the same
			// fallback as a failed chunk fetch.
			missPos = append(missPos, pos)
			continue
		}
		// Emit a view into the fetched chunk, not a copy: the group's
		// files collectively keep the chunk blob alive, and the full
		// slice expression keeps an append by a consumer from bleeding
		// into the next file's bytes.
		out[pos-span.Start] = pay[m.Offset : m.Offset+m.Length : m.Offset+m.Length]
	}
	if len(missPos) > 0 {
		paths := make([]string, len(missPos))
		for i, pos := range missPos {
			paths[i] = s.snap.FileName(int(plan.Files[pos]))
		}
		mChunkFallbacks.Add(uint64(len(missPos)))
		batch, err := s.cl.GetBatch(ctx, paths)
		if err != nil {
			return nil, joinChunkErrors(chunks, err)
		}
		for i, pos := range missPos {
			if batch[i] == nil {
				return nil, joinChunkErrors(chunks,
					fmt.Errorf("epoch: file %q missing from batch fallback", paths[i]))
			}
			out[pos-span.Start] = batch[i]
		}
	}
	return out, nil
}

// fetched is one chunk's fetch-and-parse outcome within a group read.
type fetched struct {
	ck  *chunk.Chunk
	err error
}

// joinChunkErrors decorates a fallback failure with the chunk errors that
// forced the fallback, so the surfaced error names the root cause.
func joinChunkErrors(chunks map[int32]*fetched, err error) error {
	for _, f := range chunks {
		if f.err != nil {
			return fmt.Errorf("%w (chunk fetch: %w)", err, f.err)
		}
	}
	return err
}

// CacheSource feeds an epoch reader through the task-grained distributed
// cache: each file goes to its owning master in one hop (Figure 7), and
// prefetching a group ahead pulls the group's chunks into the cache
// before the consumer arrives. parallel bounds concurrent file reads
// within one group.
type CacheSource struct {
	fr       FileReader
	read     func(ctx context.Context, path string) ([]byte, error)
	snap     *meta.Snapshot
	parallel int
}

// NewCacheSource builds a cache-backed source (fr is typically a
// *dcache.Peer). parallel <=0 means 8. A FileReader that also implements
// ViewReader is read through its zero-copy path: ReadGroup's contract
// already declares payloads read-only, so local cache hits can skip the
// defensive copy.
func NewCacheSource(fr FileReader, snap *meta.Snapshot, parallel int) *CacheSource {
	if parallel <= 0 {
		parallel = 8
	}
	read := fr.ReadFileContext
	if vr, ok := fr.(ViewReader); ok {
		read = vr.ReadFileViewContext
	}
	return &CacheSource{fr: fr, read: read, snap: snap, parallel: parallel}
}

// maxJoinedReadErrors caps how many per-file failures one group read
// reports; past it the joined error just counts the rest.
const maxJoinedReadErrors = 8

// ReadGroup implements Source. A fixed pool of min(parallel, n) workers
// drains the group's files from a channel, so a large group never holds
// more goroutines than parallel — the previous shape spawned one
// goroutine per file and only then queued on the semaphore, bursting
// thousands of goroutines for chunk-sized groups. Every file is
// attempted even after a failure, and all failures are joined so the
// caller sees each broken file, not just the first.
func (s *CacheSource) ReadGroup(ctx context.Context, plan *shuffle.Plan, g int) ([][]byte, error) {
	span := plan.Groups[g]
	n := span.End - span.Start
	out := make([][]byte, n)
	errs := make([]error, n)
	jobs := make(chan int)
	workers := s.parallel
	if n < workers {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pos := range jobs {
				if err := ctx.Err(); err != nil {
					errs[pos-span.Start] = err
					continue
				}
				path := s.snap.FileName(int(plan.Files[pos]))
				out[pos-span.Start], errs[pos-span.Start] = s.read(ctx, path)
			}
		}()
	}
	for pos := span.Start; pos < span.End; pos++ {
		jobs <- pos
	}
	close(jobs)
	wg.Wait()

	var joined []error
	extra := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		if len(joined) >= maxJoinedReadErrors {
			extra++
			continue
		}
		joined = append(joined, fmt.Errorf("epoch: read %q: %w",
			s.snap.FileName(int(plan.Files[span.Start+i])), err))
	}
	if extra > 0 {
		joined = append(joined, fmt.Errorf("epoch: %d more file reads failed", extra))
	}
	if len(joined) > 0 {
		return nil, errors.Join(joined...)
	}
	return out, nil
}
