package epoch

// Tail-latency controls for group fetches: hedged requests and per-group
// deadlines. A straggling chunk fetch — one slow disk read, one loaded
// server — stalls the whole training loop once the prefetch window
// drains, so instead of waiting it out the reader reissues the group
// through a secondary Source (or the primary again with a fresh context)
// after an adaptive delay, takes whichever attempt finishes first, and
// cancels the loser. The delay tracks the rolling p99 of this reader's
// own group-fetch attempts (clamped below by a fixed floor), the
// "tail at scale" policy: a hedge issued at p99 adds ~1% extra load but
// caps the stall of the slowest percentile near 2× the typical fetch.
//
// WithGroupDeadline composes with hedging: each attempt runs under its
// own timeout, so a wedged fetch degrades to the hedge (or, with hedging
// off, to one fresh-context retry) instead of pinning a window slot until
// the epoch's context dies.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"diesel/internal/obs"
)

// hedgeMinSamples is how many attempt latencies the rolling tracker needs
// before the p99 estimate participates in the hedge delay; below it the
// configured floor alone decides.
const hedgeMinSamples = 8

// DefaultHedgeDelayFloor is the minimum hedge delay when WithHedge is on
// and no floor was configured. It exists so microsecond-scale sources
// (all-local cache hits) don't hedge every read while the p99 tracker is
// still cold; once warm, the rolling p99 dominates whenever it is larger.
const DefaultHedgeDelayFloor = time.Millisecond

// delayTracker derives the hedge delay from the latencies of this
// reader's own successful fetch attempts: max(floor, rolling p99).
// Loser attempts are never observed, so the estimate converges to the
// typical distribution instead of chasing the stragglers it hedges away.
type delayTracker struct {
	hist  obs.Histogram // nanosecond observations; zero value usable
	floor time.Duration
}

func (t *delayTracker) observe(d time.Duration) { t.hist.ObserveDuration(d) }

func (t *delayTracker) delay() time.Duration {
	s := t.hist.Snapshot()
	if s.Count < hedgeMinSamples {
		return t.floor
	}
	if p99 := time.Duration(s.Quantile(0.99)); p99 > t.floor {
		return p99
	}
	return t.floor
}

// attemptTracker lets Close wait for straggling fetch attempts without
// racing WaitGroup.Add against WaitGroup.Wait: spawn refuses new attempts
// once shutdown began, and wait returns only after every launched attempt
// (winner and loser alike) has unwound — so no goroutine, borrowed span
// or half-finished RPC outlives the reader.
type attemptTracker struct {
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// spawn runs fn on its own goroutine, or reports false when the tracker
// is already shut down.
func (a *attemptTracker) spawn(fn func()) bool {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return false
	}
	a.wg.Add(1)
	a.mu.Unlock()
	go func() {
		defer a.wg.Done()
		fn()
	}()
	return true
}

// shutdown blocks until every spawned attempt has exited; further spawns
// are refused. The caller must have cancelled the attempts' contexts
// first, or shutdown waits a full fetch.
func (a *attemptTracker) shutdown() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	a.wg.Wait()
}

// attemptResult is one fetch attempt's outcome; which distinguishes the
// primary (0) from the hedge/fallback (1).
type attemptResult struct {
	data  [][]byte
	err   error
	which int
	dur   time.Duration // the attempt's own service time
}

// readGroup fetches one group through the configured tail-latency
// machinery. With neither hedging nor a deadline configured it is exactly
// src.ReadGroup — the default path stays allocation- and
// goroutine-identical to the plain reader.
func (r *Reader) readGroup(ctx context.Context, g int) ([][]byte, error) {
	if !r.cfg.hedge && r.cfg.deadline <= 0 {
		return r.src.ReadGroup(ctx, r.plan, g)
	}
	return r.readGroupHedged(ctx, g)
}

// readGroupHedged runs up to two attempts with first-success-wins
// semantics:
//
//   - the primary attempt starts immediately (under WithGroupDeadline's
//     timeout when configured);
//   - with hedging on, a second attempt starts once the adaptive delay
//     elapses — or immediately if the primary fails first;
//   - with hedging off but a deadline on, a primary deadline trip earns
//     one fresh-context retry (the degradation WithGroupDeadline
//     promises) while other primary errors keep today's fail-fast path.
//
// The loser's context is cancelled on return; its goroutine drains into a
// buffered channel and is joined by Close via the attempt tracker, and
// its payloads are plain GC-owned slices (sources never hand the epoch
// layer pooled buffers), so dropping them leaks nothing.
func (r *Reader) readGroupHedged(ctx context.Context, g int) ([][]byte, error) {
	results := make(chan attemptResult, 2) // attempts never block sending
	var cancels [2]context.CancelFunc
	defer func() {
		for _, cancel := range cancels {
			if cancel != nil {
				cancel()
			}
		}
	}()

	launch := func(which int, src Source) bool {
		var actx context.Context
		var cancel context.CancelFunc
		if r.cfg.deadline > 0 {
			actx, cancel = context.WithTimeout(ctx, r.cfg.deadline)
		} else {
			actx, cancel = context.WithCancel(ctx)
		}
		cancels[which] = cancel
		ok := r.attempts.spawn(func() {
			start := time.Now()
			data, err := src.ReadGroup(actx, r.plan, g)
			results <- attemptResult{data: data, err: err, which: which, dur: time.Since(start)}
		})
		if !ok {
			cancel()
		}
		return ok
	}

	secondary := r.src
	if r.cfg.hedgeSrc != nil {
		secondary = r.cfg.hedgeSrc
	}

	if !launch(0, r.src) {
		return nil, fmt.Errorf("%w: %w", ErrClosed, context.Cause(r.ctx))
	}

	var hedgeC <-chan time.Time
	if r.cfg.hedge {
		timer := time.NewTimer(r.delay.delay())
		defer timer.Stop()
		hedgeC = timer.C
	}

	hedged := false
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()

		case <-hedgeC:
			hedgeC = nil
			if launch(1, secondary) {
				hedged = true
				mHedges.Inc()
			}

		case res := <-results:
			if res.err == nil {
				if hedged && r.cfg.hedge {
					if res.which == 1 {
						mHedgeWins.Inc()
					} else {
						mHedgeWasted.Inc()
					}
				}
				r.delay.observe(res.dur)
				return res.data, nil
			}

			deadlined := r.cfg.deadline > 0 && ctx.Err() == nil &&
				errors.Is(res.err, context.DeadlineExceeded)
			if deadlined {
				mDeadlineTrips.Inc()
			}
			if res.which == 0 && !hedged {
				hedgeC = nil // the failure is the hedge trigger now
				// A second attempt is warranted when hedging is on (the
				// secondary may succeed where the primary failed) or when
				// the primary was cut down by its own deadline (the
				// promised degrade-to-fallback). Plain primary errors
				// with hedging off keep the established fail-fast
				// semantics.
				if r.cfg.hedge || deadlined {
					if launch(1, secondary) {
						hedged = true
						if r.cfg.hedge {
							mHedges.Inc()
						}
						firstErr = res.err
						continue
					}
				}
				return nil, res.err
			}
			if firstErr == nil {
				// Hedge failed while the primary is still in flight:
				// remember why and keep waiting for the primary.
				firstErr = res.err
				continue
			}
			// Both attempts have failed.
			return nil, fmt.Errorf("epoch: group %d: both attempts failed: %w", g,
				errors.Join(firstErr, res.err))
		}
	}
}
