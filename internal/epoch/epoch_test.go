package epoch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"diesel/internal/chunk"
	"diesel/internal/meta"
	"diesel/internal/shuffle"
)

// buildSnap creates a snapshot with nChunks chunks of filesPerChunk files
// (the shuffle package's test fixture shape).
func buildSnap(nChunks, filesPerChunk int) *meta.Snapshot {
	b := meta.NewSnapshotBuilder("ds", 1)
	for c := range nChunks {
		var id chunk.ID
		id[0], id[1] = byte(c>>8), byte(c)
		ci := b.AddChunk(id, 4<<20, 100)
		for f := range filesPerChunk {
			b.AddFile(fmt.Sprintf("c%03d/f%03d", c, f), meta.FileMeta{
				ChunkIdx: ci, Index: uint32(f), Offset: uint64(f * 100), Length: 100,
			})
		}
	}
	return b.Build()
}

// fakeSource serves groups from the snapshot itself: each file's payload
// is its own path, with optional per-group latency and failure injection.
type fakeSource struct {
	snap      *meta.Snapshot
	latency   time.Duration
	failGroup int // -1: never fail
	reads     atomic.Int64
	active    atomic.Int64
	maxActive atomic.Int64
}

func newFakeSource(snap *meta.Snapshot, latency time.Duration) *fakeSource {
	return &fakeSource{snap: snap, latency: latency, failGroup: -1}
}

func (s *fakeSource) ReadGroup(ctx context.Context, plan *shuffle.Plan, g int) ([][]byte, error) {
	cur := s.active.Add(1)
	defer s.active.Add(-1)
	for {
		m := s.maxActive.Load()
		if cur <= m || s.maxActive.CompareAndSwap(m, cur) {
			break
		}
	}
	if s.latency > 0 {
		select {
		case <-time.After(s.latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if g == s.failGroup {
		return nil, errors.New("injected group failure")
	}
	s.reads.Add(1)
	span := plan.Groups[g]
	out := make([][]byte, span.End-span.Start)
	for pos := span.Start; pos < span.End; pos++ {
		out[pos-span.Start] = []byte(s.snap.FileName(int(plan.Files[pos])))
	}
	return out, nil
}

// drainAll consumes the reader to completion, asserting exact plan order.
func drainAll(t *testing.T, r *Reader, plan *shuffle.Plan, snap *meta.Snapshot) int {
	t.Helper()
	n := 0
	for {
		s, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next at pos %d: %v", n, err)
		}
		if s.Pos != n {
			t.Fatalf("sample %d has Pos %d", n, s.Pos)
		}
		wantPath := snap.FileName(int(plan.Files[n]))
		if s.Path != wantPath {
			t.Fatalf("pos %d: path %q, want %q", n, s.Path, wantPath)
		}
		if string(s.Data) != wantPath {
			t.Fatalf("pos %d: data %q, want %q", n, s.Data, wantPath)
		}
		if want := plan.GroupOf(n); s.Group != want {
			t.Fatalf("pos %d: group %d, want %d", n, s.Group, want)
		}
		n++
	}
	if r.Err() != nil {
		t.Fatalf("Err after clean drain: %v", r.Err())
	}
	return n
}

func TestReaderOrderFidelity(t *testing.T) {
	snap := buildSnap(12, 7)
	plan := shuffle.ChunkWisePlan(snap, 42, 3)
	for _, window := range []int{0, 1, 2, 5, 100} {
		t.Run(fmt.Sprintf("window=%d", window), func(t *testing.T) {
			src := newFakeSource(snap, 200*time.Microsecond)
			r := NewReader(plan, snap, src, WithWindow(window))
			defer r.Close()
			if n := drainAll(t, r, plan, snap); n != snap.NumFiles() {
				t.Fatalf("consumed %d of %d files", n, snap.NumFiles())
			}
			if got := src.reads.Load(); got != int64(len(plan.Groups)) {
				t.Errorf("source read %d groups, plan has %d", got, len(plan.Groups))
			}
		})
	}
}

func TestReaderPrefetchOverlaps(t *testing.T) {
	snap := buildSnap(8, 4)
	plan := shuffle.ChunkWisePlan(snap, 1, 1)
	src := newFakeSource(snap, 10*time.Millisecond)
	r := NewReader(plan, snap, src, WithWindow(4))
	defer r.Close()
	drainAll(t, r, plan, snap)
	if src.maxActive.Load() < 2 {
		t.Errorf("max concurrent group fetches = %d; window not overlapping", src.maxActive.Load())
	}
}

func TestReaderWindowBoundsPrefetch(t *testing.T) {
	snap := buildSnap(10, 2)
	plan := shuffle.ChunkWisePlan(snap, 3, 1)
	src := newFakeSource(snap, 0)
	r := NewReader(plan, snap, src, WithWindow(3))
	defer r.Close()
	// Without consuming, at most window groups may be fetched.
	time.Sleep(30 * time.Millisecond)
	if got := src.reads.Load(); got > 3 {
		t.Errorf("%d groups fetched before any consumption; window is 3", got)
	}
	drainAll(t, r, plan, snap)
}

func TestReaderSynchronousWindowZero(t *testing.T) {
	snap := buildSnap(6, 3)
	plan := shuffle.ChunkWisePlan(snap, 9, 2)
	src := newFakeSource(snap, 0)
	r := NewReader(plan, snap, src, WithWindow(0))
	defer r.Close()
	// Nothing may be fetched until the consumer asks.
	time.Sleep(10 * time.Millisecond)
	if got := src.reads.Load(); got != 0 {
		t.Fatalf("window=0 fetched %d groups before first Next", got)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if got := src.reads.Load(); got != 1 {
		t.Fatalf("after first Next: %d groups fetched, want 1", got)
	}
}

func TestReaderErrorEndsEpoch(t *testing.T) {
	snap := buildSnap(6, 3)
	plan := shuffle.ChunkWisePlan(snap, 5, 2)
	src := newFakeSource(snap, 0)
	src.failGroup = 1
	r := NewReader(plan, snap, src, WithWindow(2))
	defer r.Close()
	var lastErr error
	for {
		_, err := r.Next()
		if err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil || lastErr == io.EOF {
		t.Fatalf("injected failure never surfaced: %v", lastErr)
	}
	if r.Err() == nil {
		t.Fatal("Err() nil after failed epoch")
	}
	if _, err := r.Next(); err != lastErr {
		t.Errorf("Next after failure: %v, want sticky %v", err, lastErr)
	}
}

func TestReaderCancelMidEpoch(t *testing.T) {
	before := runtime.NumGoroutine()
	snap := buildSnap(20, 4)
	plan := shuffle.ChunkWisePlan(snap, 7, 2)
	src := newFakeSource(snap, 50*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	r := NewReader(plan, snap, src, WithWindow(3), WithContext(ctx))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	start := time.Now()
	var err error
	for {
		if _, err = r.Next(); err != nil {
			break
		}
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("Next took %v to observe cancellation", waited)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after cancel, got %v", err)
	}
	if r.Err() == nil {
		t.Error("Err() should report the caller-cancelled epoch")
	}
	r.Close()
	assertNoGoroutineLeak(t, before)
}

func TestReaderCloseMidEpochNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	snap := buildSnap(20, 4)
	plan := shuffle.ChunkWisePlan(snap, 8, 2)
	src := newFakeSource(snap, 5*time.Millisecond)
	r := NewReader(plan, snap, src, WithWindow(4))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r.Close() // concurrent with the consumer's Next below
		close(done)
	}()
	for {
		if _, err := r.Next(); err != nil {
			break
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
	// Locally closed, not a data failure: Err is nil by contract.
	if err := r.Err(); err != nil {
		t.Errorf("Err after local Close: %v", err)
	}
	assertNoGoroutineLeak(t, before)
}

func TestReaderEmptyPlan(t *testing.T) {
	snap := buildSnap(1, 1)
	r := NewReader(&shuffle.Plan{}, snap, newFakeSource(snap, 0), WithWindow(2))
	defer r.Close()
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty plan: %v, want io.EOF", err)
	}
}

func TestReaderDoubleCloseSafe(t *testing.T) {
	snap := buildSnap(2, 2)
	plan := shuffle.ChunkWisePlan(snap, 1, 1)
	r := NewReader(plan, snap, newFakeSource(snap, 0), WithWindow(1))
	r.Close()
	r.Close()
}

// TestReaderPipelineSpeedup is the acceptance property as a test: with a
// latency-bound source, a window >= 2 must finish the epoch at least 2x
// faster than the synchronous window=0 configuration.
func TestReaderPipelineSpeedup(t *testing.T) {
	snap := buildSnap(8, 4)
	plan := shuffle.ChunkWisePlan(snap, 11, 1)
	run := func(window int) time.Duration {
		src := newFakeSource(snap, 20*time.Millisecond)
		r := NewReader(plan, snap, src, WithWindow(window))
		defer r.Close()
		start := time.Now()
		drainAll(t, r, plan, snap)
		return time.Since(start)
	}
	sync := run(0)
	piped := run(4)
	if piped*2 > sync {
		t.Errorf("window=4 epoch took %v vs sync %v; want >= 2x speedup", piped, sync)
	}
}

// assertNoGoroutineLeak waits for the goroutine count to settle back to
// (at most) its starting point, tolerating runtime background goroutines.
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
