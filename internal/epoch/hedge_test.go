package epoch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"diesel/internal/meta"
	"diesel/internal/shuffle"
)

// flakySource wedges the first attempt of selected groups (blocking until
// the attempt's context dies) and serves any retry/hedge immediately —
// the straggler shape hedging and deadlines exist to cut short.
type flakySource struct {
	snap *meta.Snapshot
	mu   sync.Mutex
	n    map[int]int      // attempts seen per group
	slow func(g int) bool // which groups wedge on their first attempt
}

func newFlakySource(snap *meta.Snapshot, slow func(g int) bool) *flakySource {
	return &flakySource{snap: snap, n: make(map[int]int), slow: slow}
}

func (s *flakySource) attempt(g int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n[g]++
	return s.n[g]
}

func (s *flakySource) attempts(g int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n[g]
}

func (s *flakySource) ReadGroup(ctx context.Context, plan *shuffle.Plan, g int) ([][]byte, error) {
	if s.attempt(g) == 1 && s.slow(g) {
		<-ctx.Done() // wedged until hedged away, deadlined, or epoch torn down
		return nil, ctx.Err()
	}
	span := plan.Groups[g]
	out := make([][]byte, span.End-span.Start)
	for pos := span.Start; pos < span.End; pos++ {
		out[pos-span.Start] = []byte(s.snap.FileName(int(plan.Files[pos])))
	}
	return out, nil
}

// TestHedgeFirstWins: a fast secondary source beats a wedged primary; the
// epoch completes in plan order from hedge wins, the losers' contexts are
// cancelled, and no goroutine outlives Close.
func TestHedgeFirstWins(t *testing.T) {
	before := runtime.NumGoroutine()
	snap := buildSnap(8, 4)
	plan := shuffle.ChunkWisePlan(snap, 21, 2)
	primary := newFlakySource(snap, func(int) bool { return true })
	secondary := newFakeSource(snap, 0)
	wins0 := mHedgeWins.Load()

	r := NewReader(plan, snap, primary, WithWindow(2),
		WithHedge(secondary), WithHedgeDelayFloor(2*time.Millisecond))
	start := time.Now()
	if n := drainAll(t, r, plan, snap); n != snap.NumFiles() {
		t.Fatalf("consumed %d of %d files", n, snap.NumFiles())
	}
	r.Close()
	if wedged := time.Since(start); wedged > 5*time.Second {
		t.Fatalf("hedged epoch took %v; stragglers were not hedged away", wedged)
	}
	if got := mHedgeWins.Load() - wins0; got < uint64(len(plan.Groups)) {
		t.Errorf("hedge wins %d, want >= %d (every primary wedged)", got, len(plan.Groups))
	}
	if got := secondary.reads.Load(); got != int64(len(plan.Groups)) {
		t.Errorf("secondary served %d groups, want %d", got, len(plan.Groups))
	}
	assertNoGoroutineLeak(t, before)
}

// TestHedgeSameSourceRetry: WithHedge(nil) reissues through the primary
// source with a fresh context, so a per-attempt wedge still clears.
func TestHedgeSameSourceRetry(t *testing.T) {
	before := runtime.NumGoroutine()
	snap := buildSnap(6, 3)
	plan := shuffle.ChunkWisePlan(snap, 4, 2)
	src := newFlakySource(snap, func(g int) bool { return g%2 == 0 })
	hedges0 := mHedges.Load()

	r := NewReader(plan, snap, src, WithWindow(2),
		WithHedge(nil), WithHedgeDelayFloor(2*time.Millisecond))
	drainAll(t, r, plan, snap)
	r.Close()
	for g := range plan.Groups {
		want := 1
		if g%2 == 0 {
			want = 2 // the wedged first attempt plus the winning hedge
		}
		if got := src.attempts(g); got != want {
			t.Errorf("group %d saw %d attempts, want %d", g, got, want)
		}
	}
	if mHedges.Load() == hedges0 {
		t.Error("no hedges counted despite wedged primaries")
	}
	assertNoGoroutineLeak(t, before)
}

// TestGroupDeadlineDegrades: with hedging off, a deadline trip earns one
// fresh-context retry instead of pinning the window slot forever.
func TestGroupDeadlineDegrades(t *testing.T) {
	before := runtime.NumGoroutine()
	snap := buildSnap(6, 3)
	plan := shuffle.ChunkWisePlan(snap, 13, 2)
	src := newFlakySource(snap, func(g int) bool { return g == 1 })
	trips0 := mDeadlineTrips.Load()
	hedges0 := mHedges.Load()

	r := NewReader(plan, snap, src, WithWindow(2), WithGroupDeadline(20*time.Millisecond))
	drainAll(t, r, plan, snap)
	r.Close()
	if got := mDeadlineTrips.Load() - trips0; got < 1 {
		t.Errorf("deadline trips %d, want >= 1", got)
	}
	if got := mHedges.Load() - hedges0; got != 0 {
		t.Errorf("deadline-only retries counted as %d hedges", got)
	}
	assertNoGoroutineLeak(t, before)
}

// TestGroupDeadlineBothFail: when the fallback attempt also dies, Next
// surfaces a joined error naming both failures.
func TestGroupDeadlineBothFail(t *testing.T) {
	snap := buildSnap(2, 2)
	plan := shuffle.ChunkWisePlan(snap, 3, 1)
	// Every attempt wedges: primary trips the deadline, so does the retry.
	src := newFlakySource(snap, nil)
	src.slow = func(int) bool { return true }
	alwaysSlow := &wedgeEverySource{inner: src}

	r := NewReader(plan, snap, alwaysSlow, WithWindow(1), WithGroupDeadline(10*time.Millisecond))
	defer r.Close()
	var err error
	for {
		if _, err = r.Next(); err != nil {
			break
		}
	}
	if err == io.EOF {
		t.Fatal("epoch completed despite every attempt wedging")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not unwrap to context.DeadlineExceeded", err)
	}
}

// wedgeEverySource blocks every attempt until its context dies.
type wedgeEverySource struct{ inner *flakySource }

func (s *wedgeEverySource) ReadGroup(ctx context.Context, plan *shuffle.Plan, g int) ([][]byte, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestReorderWindowDelivery: with group 0 slow and a reorder window open,
// later groups are served first; every position is still served exactly
// once with exact Pos/Path/Data, within-group order holds, and the
// delivery skew never exceeds k.
func TestReorderWindowDelivery(t *testing.T) {
	snap := buildSnap(10, 4)
	plan := shuffle.ChunkWisePlan(snap, 17, 2)
	k := 2
	src := &slowGroupSource{snap: snap, slowGroup: 0, delay: 80 * time.Millisecond}
	served0 := mReorderServed.Load()

	r := NewReader(plan, snap, src, WithWindow(3), WithReorderWindow(k))
	defer r.Close()

	seen := make([]bool, snap.NumFiles())
	servedGroups := make([]bool, len(plan.Groups))
	low := 0
	var order []int
	lastPos := -1
	for {
		s, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.Pos] {
			t.Fatalf("pos %d served twice", s.Pos)
		}
		seen[s.Pos] = true
		wantPath := snap.FileName(int(plan.Files[s.Pos]))
		if s.Path != wantPath || string(s.Data) != wantPath {
			t.Fatalf("pos %d: path %q data %q, want %q", s.Pos, s.Path, s.Data, wantPath)
		}
		if want := plan.GroupOf(s.Pos); s.Group != want {
			t.Fatalf("pos %d: group %d, want %d", s.Pos, s.Group, want)
		}
		if len(order) == 0 || order[len(order)-1] != s.Group {
			// New group installed: bounded skew against the oldest
			// unserved group at installation time.
			if skew := s.Group - low; skew > k {
				t.Fatalf("group %d served %d ahead of oldest unserved %d (k=%d)", s.Group, skew, low, k)
			}
			order = append(order, s.Group)
			servedGroups[s.Group] = true
			for low < len(servedGroups) && servedGroups[low] {
				low++
			}
			lastPos = -1
		}
		if lastPos >= 0 && s.Pos != lastPos+1 {
			t.Fatalf("within-group order broken: pos %d after %d", s.Pos, lastPos)
		}
		lastPos = s.Pos
	}
	for pos, ok := range seen {
		if !ok {
			t.Fatalf("pos %d never served", pos)
		}
	}
	if order[0] == 0 {
		t.Error("slow group 0 was served first; reorder window had no effect")
	}
	if mReorderServed.Load() == served0 {
		t.Error("diesel_epoch_reorder_served_total never incremented")
	}
}

// slowGroupSource delays exactly one group; the rest return immediately.
type slowGroupSource struct {
	snap      *meta.Snapshot
	slowGroup int
	delay     time.Duration
}

func (s *slowGroupSource) ReadGroup(ctx context.Context, plan *shuffle.Plan, g int) ([][]byte, error) {
	if g == s.slowGroup {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	span := plan.Groups[g]
	out := make([][]byte, span.End-span.Start)
	for pos := span.Start; pos < span.End; pos++ {
		out[pos-span.Start] = []byte(s.snap.FileName(int(plan.Files[pos])))
	}
	return out, nil
}

// TestReorderZeroIsStrictOrder: k=0 (and k>0 with window=0, where it is
// documented to be ignored) keeps the byte-for-byte strict plan order.
func TestReorderZeroIsStrictOrder(t *testing.T) {
	snap := buildSnap(8, 3)
	plan := shuffle.ChunkWisePlan(snap, 29, 2)
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"k=0_window=2", []Option{WithWindow(2), WithReorderWindow(0)}},
		{"k=3_window=0", []Option{WithWindow(0), WithReorderWindow(3)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := newFakeSource(snap, 100*time.Microsecond)
			r := NewReader(plan, snap, src, tc.opts...)
			defer r.Close()
			// drainAll asserts exact plan order, position by position.
			if n := drainAll(t, r, plan, snap); n != snap.NumFiles() {
				t.Fatalf("consumed %d of %d files", n, snap.NumFiles())
			}
		})
	}
}

// TestGroupFetchLatBothPaths: the group-fetch histogram must be populated
// by the synchronous window=0 path and the pipelined path alike — the
// window=0 baseline is exactly what benchmark comparisons divide by.
func TestGroupFetchLatBothPaths(t *testing.T) {
	snap := buildSnap(5, 3)
	plan := shuffle.ChunkWisePlan(snap, 7, 1)
	for _, window := range []int{0, 2} {
		t.Run(fmt.Sprintf("window=%d", window), func(t *testing.T) {
			count0 := mGroupFetchLat.Count()
			src := newFakeSource(snap, 0)
			r := NewReader(plan, snap, src, WithWindow(window))
			defer r.Close()
			drainAll(t, r, plan, snap)
			if got := mGroupFetchLat.Count() - count0; got != uint64(len(plan.Groups)) {
				t.Errorf("window=%d observed %d group fetches, want %d",
					window, got, len(plan.Groups))
			}
		})
	}
}

// TestHedgingBoundsStalls is the acceptance property as a test: with a
// deterministic 1-in-4 straggler whose first attempt wedges ~400ms, the
// hedged reader's worst single Next call stays far below the straggler
// latency, while the unhedged reader is exposed to it in full.
func TestHedgingBoundsStalls(t *testing.T) {
	snap := buildSnap(16, 3)
	plan := shuffle.ChunkWisePlan(snap, 31, 2)
	straggle := func(g int) bool { return g%4 == 3 }

	run := func(opts ...Option) time.Duration {
		src := newStragglerSource(snap, straggle, 400*time.Millisecond)
		base := []Option{WithWindow(2)}
		r := NewReader(plan, snap, src, append(base, opts...)...)
		defer r.Close()
		var worst time.Duration
		for {
			start := time.Now()
			_, err := r.Next()
			if d := time.Since(start); d > worst {
				worst = d
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return worst
	}

	unhedged := run()
	hedged := run(WithHedge(nil), WithHedgeDelayFloor(10*time.Millisecond),
		WithGroupDeadline(2*time.Second))
	if unhedged < 300*time.Millisecond {
		t.Fatalf("unhedged worst stall %v; straggler injection not visible", unhedged)
	}
	if hedged >= unhedged/2 {
		t.Errorf("hedged worst stall %v vs unhedged %v; want < half", hedged, unhedged)
	}
}

// stragglerSource wedges the first attempt of straggler groups for a
// bounded delay (not until cancel), modeling a 10x-slow disk read.
type stragglerSource struct {
	snap  *meta.Snapshot
	slow  func(g int) bool
	delay time.Duration
	mu    sync.Mutex
	n     map[int]int
}

func newStragglerSource(snap *meta.Snapshot, slow func(g int) bool, delay time.Duration) *stragglerSource {
	return &stragglerSource{snap: snap, slow: slow, delay: delay, n: make(map[int]int)}
}

func (s *stragglerSource) ReadGroup(ctx context.Context, plan *shuffle.Plan, g int) ([][]byte, error) {
	s.mu.Lock()
	s.n[g]++
	first := s.n[g] == 1
	s.mu.Unlock()
	wait := time.Millisecond
	if first && s.slow(g) {
		wait = s.delay
	}
	select {
	case <-time.After(wait):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	span := plan.Groups[g]
	out := make([][]byte, span.End-span.Start)
	for pos := span.Start; pos < span.End; pos++ {
		out[pos-span.Start] = []byte(s.snap.FileName(int(plan.Files[pos])))
	}
	return out, nil
}

// TestHedgeCloseMidFlight: closing the reader while hedge attempts are in
// flight joins every attempt goroutine before Close returns.
func TestHedgeCloseMidFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	snap := buildSnap(12, 3)
	plan := shuffle.ChunkWisePlan(snap, 19, 2)
	src := newFlakySource(snap, func(int) bool { return true })
	r := NewReader(plan, snap, src, WithWindow(3),
		WithHedge(nil), WithHedgeDelayFloor(time.Millisecond))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrClosed) && err != io.EOF {
		// Close raced the buffered current group: either outcome is fine,
		// but an unrelated error is not.
		if err == nil {
			// Buffered samples of the installed group may still drain.
			for {
				_, err = r.Next()
				if err != nil {
					break
				}
			}
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("after Close: %v", err)
			}
		} else {
			t.Fatalf("after Close: %v", err)
		}
	}
	assertNoGoroutineLeak(t, before)
}
