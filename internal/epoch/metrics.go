package epoch

import "diesel/internal/obs"

// Process-wide epoch-pipeline metrics on the default registry:
//
//	diesel_epoch_samples_total        files served in plan order
//	diesel_epoch_bytes_total          payload bytes served
//	diesel_epoch_groups_total         chunk groups fetched
//	diesel_epoch_chunk_fallbacks_total files re-read via the batched API
//	                                  because their chunk failed to fetch
//	diesel_epoch_prefetch_depth       groups fetched and not yet consumed
//	diesel_epoch_stall_seconds        time Next blocked waiting for a group
//	                                  (what the prefetch window exists to
//	                                  hide; window=0 exposes every fetch)
//	diesel_epoch_group_fetch_seconds  source latency for one whole group
//	diesel_epoch_hedges_total         hedged group fetches issued after the
//	                                  adaptive (p99-derived) delay
//	diesel_epoch_hedge_wins_total     hedges whose attempt supplied the
//	                                  group (the straggler lost the race)
//	diesel_epoch_hedge_wasted_total   hedges the primary beat anyway — the
//	                                  cost side of the hedging policy
//	diesel_epoch_deadline_trips_total fetch attempts cut down by
//	                                  WithGroupDeadline
//	diesel_epoch_reorder_served_total groups served ahead of plan order
//	                                  through the reorder window
//	diesel_epoch_reorder_skew         how many groups ahead of the oldest
//	                                  unserved group each early delivery
//	                                  was (bounded by WithReorderWindow)
var (
	mSamples = obs.Default().Counter("diesel_epoch_samples_total",
		"Files served by epoch readers in plan order.")
	mBytes = obs.Default().Counter("diesel_epoch_bytes_total",
		"Payload bytes served by epoch readers.")
	mGroups = obs.Default().Counter("diesel_epoch_groups_total",
		"Chunk groups fetched by epoch readers.")
	mChunkFallbacks = obs.Default().Counter("diesel_epoch_chunk_fallbacks_total",
		"Files re-read via the batched file API after a chunk fetch failed.")
	mDepth = obs.Default().Gauge("diesel_epoch_prefetch_depth",
		"Groups fetched ahead and not yet consumed, across live epoch readers.")
	mStallLat = obs.Default().Duration("diesel_epoch_stall_seconds",
		"Time the epoch consumer blocked waiting for the next group.")
	mGroupFetchLat = obs.Default().Duration("diesel_epoch_group_fetch_seconds",
		"Source latency fetching one whole chunk group.")
	mHedges = obs.Default().Counter("diesel_epoch_hedges_total",
		"Hedged group fetches issued after the adaptive delay.")
	mHedgeWins = obs.Default().Counter("diesel_epoch_hedge_wins_total",
		"Hedged group fetches won by the hedge attempt.")
	mHedgeWasted = obs.Default().Counter("diesel_epoch_hedge_wasted_total",
		"Hedged group fetches the primary attempt won anyway.")
	mDeadlineTrips = obs.Default().Counter("diesel_epoch_deadline_trips_total",
		"Group fetch attempts cancelled by the per-group deadline.")
	mReorderServed = obs.Default().Counter("diesel_epoch_reorder_served_total",
		"Groups served ahead of plan order through the reorder window.")
	mReorderSkew = obs.Default().Histogram("diesel_epoch_reorder_skew",
		"Groups ahead of the oldest unserved group at each early delivery.", 1)
)
