package epoch

import "diesel/internal/obs"

// Process-wide epoch-pipeline metrics on the default registry:
//
//	diesel_epoch_samples_total        files served in plan order
//	diesel_epoch_bytes_total          payload bytes served
//	diesel_epoch_groups_total         chunk groups fetched
//	diesel_epoch_chunk_fallbacks_total files re-read via the batched API
//	                                  because their chunk failed to fetch
//	diesel_epoch_prefetch_depth       groups fetched and not yet consumed
//	diesel_epoch_stall_seconds        time Next blocked waiting for a group
//	                                  (what the prefetch window exists to
//	                                  hide; window=0 exposes every fetch)
//	diesel_epoch_group_fetch_seconds  source latency for one whole group
var (
	mSamples = obs.Default().Counter("diesel_epoch_samples_total",
		"Files served by epoch readers in plan order.")
	mBytes = obs.Default().Counter("diesel_epoch_bytes_total",
		"Payload bytes served by epoch readers.")
	mGroups = obs.Default().Counter("diesel_epoch_groups_total",
		"Chunk groups fetched by epoch readers.")
	mChunkFallbacks = obs.Default().Counter("diesel_epoch_chunk_fallbacks_total",
		"Files re-read via the batched file API after a chunk fetch failed.")
	mDepth = obs.Default().Gauge("diesel_epoch_prefetch_depth",
		"Groups fetched ahead and not yet consumed, across live epoch readers.")
	mStallLat = obs.Default().Duration("diesel_epoch_stall_seconds",
		"Time the epoch consumer blocked waiting for the next group.")
	mGroupFetchLat = obs.Default().Duration("diesel_epoch_group_fetch_seconds",
		"Source latency fetching one whole chunk group.")
)
