package epoch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"diesel/internal/chunk"
	"diesel/internal/meta"
	"diesel/internal/shuffle"
)

// fakeChunkClient implements ChunkClient from in-memory encoded chunks,
// recording batch-fallback calls.
type fakeChunkClient struct {
	chunks map[string][]byte // chunk ID string -> encoded blob
	files  map[string][]byte // path -> contents, for the batch fallback

	mu         sync.Mutex
	batchCalls [][]string
}

func (c *fakeChunkClient) GetChunk(ctx context.Context, id string) ([]byte, error) {
	blob, ok := c.chunks[id]
	if !ok {
		return nil, fmt.Errorf("no such chunk %s", id)
	}
	return blob, nil
}

func (c *fakeChunkClient) GetBatch(ctx context.Context, paths []string) ([][]byte, error) {
	c.mu.Lock()
	c.batchCalls = append(c.batchCalls, append([]string(nil), paths...))
	c.mu.Unlock()
	out := make([][]byte, len(paths))
	for i, p := range paths {
		out[i] = c.files[p]
	}
	return out, nil
}

// buildChunkFixture encodes one real chunk holding the named files and
// returns the blob plus each file's payload offset.
func buildChunkFixture(t *testing.T, files map[string][]byte, names []string) (chunk.ID, []byte, map[string]uint64) {
	t.Helper()
	gen := chunk.NewIDGenerator(func() uint32 { return 1 })
	b := chunk.NewBuilder(1<<20, gen, func() int64 { return 1 })
	offsets := make(map[string]uint64)
	var off uint64
	for _, name := range names {
		offsets[name] = off
		if _, err := b.Add(name, files[name]); err != nil {
			t.Fatal(err)
		}
		off += uint64(len(files[name]))
	}
	h, encoded, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	return h.ID, encoded, offsets
}

// TestClientSourceOutOfRangeFallsBack is the regression test for the
// stale-metadata bug: a file whose snapshot Offset+Length reaches past the
// chunk payload must degrade to the batched file API (per the documented
// contract), not fail the epoch.
func TestClientSourceOutOfRangeFallsBack(t *testing.T) {
	files := map[string][]byte{
		"d/a": []byte(strings.Repeat("A", 100)),
		"d/b": []byte(strings.Repeat("B", 100)),
	}
	id, blob, offsets := buildChunkFixture(t, files, []string{"d/a", "d/b"})

	b := meta.NewSnapshotBuilder("ds", 1)
	ci := b.AddChunk(id, uint64(len(blob)), 100)
	b.AddFile("d/a", meta.FileMeta{ChunkIdx: ci, Index: 0, Offset: offsets["d/a"], Length: 100})
	// Stale metadata: points 50 bytes past the end of the 200-byte payload.
	b.AddFile("d/b", meta.FileMeta{ChunkIdx: ci, Index: 1, Offset: 150, Length: 100})
	snap := b.Build()
	plan := shuffle.ChunkWisePlan(snap, 1, 1)

	cl := &fakeChunkClient{
		chunks: map[string][]byte{id.String(): blob},
		files:  files,
	}
	fb0 := mChunkFallbacks.Load()
	src := NewClientSource(cl, snap, 2)
	out, err := src.ReadGroup(context.Background(), plan, 0)
	if err != nil {
		t.Fatalf("out-of-range metadata failed the group read: %v", err)
	}
	for pos := range out {
		name := snap.FileName(int(plan.Files[plan.Groups[0].Start+pos]))
		if got, want := string(out[pos]), string(files[name]); got != want {
			t.Errorf("file %q: got %d bytes %q..., want %q...", name, len(got), got[:1], want[:1])
		}
	}
	if got := mChunkFallbacks.Load() - fb0; got != 1 {
		t.Errorf("chunk fallbacks counted %d, want 1", got)
	}
	if len(cl.batchCalls) != 1 || len(cl.batchCalls[0]) != 1 || cl.batchCalls[0][0] != "d/b" {
		t.Errorf("batch fallback calls = %v, want exactly [[d/b]]", cl.batchCalls)
	}
}

// TestClientSourceTruncatedChunkFallsBack: a blob cut short fails
// chunk.Parse, and every file of that chunk rides the batch fallback.
func TestClientSourceTruncatedChunkFallsBack(t *testing.T) {
	files := map[string][]byte{
		"d/a": []byte(strings.Repeat("A", 100)),
		"d/b": []byte(strings.Repeat("B", 100)),
	}
	id, blob, offsets := buildChunkFixture(t, files, []string{"d/a", "d/b"})

	b := meta.NewSnapshotBuilder("ds", 1)
	ci := b.AddChunk(id, uint64(len(blob)), 100)
	b.AddFile("d/a", meta.FileMeta{ChunkIdx: ci, Index: 0, Offset: offsets["d/a"], Length: 100})
	b.AddFile("d/b", meta.FileMeta{ChunkIdx: ci, Index: 1, Offset: offsets["d/b"], Length: 100})
	snap := b.Build()
	plan := shuffle.ChunkWisePlan(snap, 1, 1)

	cl := &fakeChunkClient{
		chunks: map[string][]byte{id.String(): blob[:len(blob)/2]},
		files:  files,
	}
	src := NewClientSource(cl, snap, 2)
	out, err := src.ReadGroup(context.Background(), plan, 0)
	if err != nil {
		t.Fatalf("truncated chunk failed the group read: %v", err)
	}
	for pos := range out {
		name := snap.FileName(int(plan.Files[plan.Groups[0].Start+pos]))
		if string(out[pos]) != string(files[name]) {
			t.Errorf("file %q served wrong bytes", name)
		}
	}
	if len(cl.batchCalls) != 1 || len(cl.batchCalls[0]) != 2 {
		t.Errorf("batch fallback calls = %v, want one call with both files", cl.batchCalls)
	}
}

// countingFileReader serves path-as-payload reads while recording
// concurrency and failing selected paths.
type countingFileReader struct {
	active    atomic.Int64
	maxActive atomic.Int64
	fail      func(path string) bool
}

func (r *countingFileReader) ReadFileContext(ctx context.Context, path string) ([]byte, error) {
	cur := r.active.Add(1)
	defer r.active.Add(-1)
	for {
		m := r.maxActive.Load()
		if cur <= m || r.maxActive.CompareAndSwap(m, cur) {
			break
		}
	}
	if r.fail != nil && r.fail(path) {
		return nil, fmt.Errorf("injected failure")
	}
	return []byte(path), nil
}

// TestCacheSourceBoundsWorkers is the regression test for the
// goroutine-burst bug: a group far larger than parallel must never run
// more than parallel concurrent file reads (the old shape spawned one
// goroutine per file before touching the semaphore).
func TestCacheSourceBoundsWorkers(t *testing.T) {
	snap := buildSnap(4, 64) // one group of 256 files at groupSize=4
	plan := shuffle.ChunkWisePlan(snap, 5, 4)
	fr := &countingFileReader{}
	src := NewCacheSource(fr, snap, 3)
	out, err := src.ReadGroup(context.Background(), plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	span := plan.Groups[0]
	for i, data := range out {
		if want := snap.FileName(int(plan.Files[span.Start+i])); string(data) != want {
			t.Fatalf("slot %d: %q, want %q", i, data, want)
		}
	}
	if got := fr.maxActive.Load(); got > 3 {
		t.Errorf("max concurrent reads %d, want <= parallel=3", got)
	}
}

// TestCacheSourceJoinsErrors: every failing file is named in the returned
// error (capped), not just the first one encountered.
func TestCacheSourceJoinsErrors(t *testing.T) {
	snap := buildSnap(2, 8)
	plan := shuffle.ChunkWisePlan(snap, 2, 2) // one group, 16 files
	bad := map[string]bool{}
	span := plan.Groups[0]
	for _, pos := range []int{1, 5} {
		bad[snap.FileName(int(plan.Files[span.Start+pos]))] = true
	}
	fr := &countingFileReader{fail: func(p string) bool { return bad[p] }}
	src := NewCacheSource(fr, snap, 4)
	_, err := src.ReadGroup(context.Background(), plan, 0)
	if err == nil {
		t.Fatal("group read succeeded despite failing files")
	}
	for p := range bad {
		if !strings.Contains(err.Error(), p) {
			t.Errorf("joined error %q does not name failing file %q", err, p)
		}
	}
}

// TestCacheSourceCapsJoinedErrors: with more failures than the cap, the
// error still terminates at a bounded size and counts the overflow.
func TestCacheSourceCapsJoinedErrors(t *testing.T) {
	snap := buildSnap(4, 8)
	plan := shuffle.ChunkWisePlan(snap, 6, 4) // one group, 32 files
	fr := &countingFileReader{fail: func(string) bool { return true }}
	src := NewCacheSource(fr, snap, 4)
	_, err := src.ReadGroup(context.Background(), plan, 0)
	if err == nil {
		t.Fatal("group read succeeded despite failing files")
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("error %T is not a joined error", err)
	}
	if n := len(joined.Unwrap()); n != maxJoinedReadErrors+1 {
		t.Errorf("joined %d errors, want cap %d + 1 overflow line", n, maxJoinedReadErrors)
	}
	if !strings.Contains(err.Error(), "more file reads failed") {
		t.Errorf("error %q missing the overflow count", err)
	}
}
