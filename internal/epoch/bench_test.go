package epoch

import (
	"fmt"
	"testing"
	"time"

	"diesel/internal/shuffle"
)

// BenchmarkReaderWindow sweeps the prefetch window over a latency-bound
// source (2 ms per group — a cheap stand-in for a networked chunk fetch).
// window=0 is the synchronous baseline; any window >= 2 should sustain
// at least twice its samples/s because group fetches overlap consumption.
// The real-stack counterpart is BenchmarkEpochRead at the repo root.
func BenchmarkReaderWindow(b *testing.B) {
	snap := buildSnap(16, 8)
	plan := shuffle.ChunkWisePlan(snap, 1, 2)
	for _, window := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			for b.Loop() {
				src := newFakeSource(snap, 2*time.Millisecond)
				r := NewReader(plan, snap, src, WithWindow(window))
				n := 0
				for {
					_, err := r.Next()
					if err != nil {
						break
					}
					n++
				}
				r.Close()
				if r.Err() != nil {
					b.Fatal(r.Err())
				}
				if n != snap.NumFiles() {
					b.Fatalf("consumed %d of %d", n, snap.NumFiles())
				}
			}
			b.ReportMetric(float64(snap.NumFiles())*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}
