package core

import (
	"fmt"
	"testing"
	"time"

	"diesel/internal/objstore"
)

// TestPurgeAfterFullyDeletedChunk reproduces the dlcmd sequence observed
// during verification: write a big chunk, write a small chunk, delete the
// small chunk's only file, purge, then delete one file from the big
// chunk. The big chunk must survive throughout.
func TestPurgeAfterFullyDeletedChunk(t *testing.T) {
	d := deploy(t, Config{
		ObjStoreDir:   t.TempDir(),
		SSDCacheBytes: 10_000_000,
	})

	// Chunk A: 500 files via one client.
	w, err := d.NewClient("demo", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 500 {
		if err := w.Put(fmt.Sprintf("train/c%02d/f%04d.bin", i%10, i), []byte("datadata")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1100 * time.Millisecond) // separate wall-clock second, as in the CLI session

	// Chunk B: one file via a fresh client (a separate dlcmd process).
	w2, err := d.NewClient("demo", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Put("docs/hello.txt", []byte("hello from verify")); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	c, err := d.NewClient("demo", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Delete("docs/hello.txt"); err != nil {
		t.Fatal(err)
	}
	if err := c.Purge(); err != nil {
		t.Fatal(err)
	}
	rec, err := c.DatasetRecord()
	if err != nil {
		t.Fatal(err)
	}
	if rec.FileCount != 500 || rec.ChunkCount != 1 {
		t.Fatalf("after purge: %+v", rec)
	}
	if _, err := c.Get("train/c07/f0007.bin"); err != nil {
		t.Fatalf("read after purge: %v", err)
	}

	// Now the second deletion (probe 4 in the CLI session).
	if err := c.Delete("train/c01/f0011.bin"); err != nil {
		t.Fatal(err)
	}
	rec, _ = c.DatasetRecord()
	if rec.FileCount != 499 || rec.ChunkCount != 1 {
		t.Fatalf("after rm: %+v", rec)
	}
	if _, err := c.Get("train/c07/f0007.bin"); err != nil {
		t.Fatalf("read after rm: %v", err)
	}
	_ = objstore.Memory{}
}
