// Package core assembles complete DIESEL deployments: the KV metadata
// cluster, the object store, the configuration registry and one or more
// DIESEL servers, wired exactly as in Figure 2 of the paper, plus helpers
// that stand up a whole DLT task (libDIESEL clients with a task-grained
// distributed cache across simulated nodes).
//
// Examples, the command-line tools and the benchmarks all build their
// stacks through this package, so the topology logic lives in one place.
package core

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"time"

	"diesel/internal/client"
	"diesel/internal/dcache"
	"diesel/internal/etcd"
	"diesel/internal/kvstore"
	"diesel/internal/objstore"
	"diesel/internal/obs"
	"diesel/internal/server"
)

// Config describes a deployment.
type Config struct {
	// KVNodes is the number of metadata key-value nodes (the paper runs a
	// 16-instance Redis cluster; tests typically use 2–4). Default 2.
	KVNodes int
	// DieselServers is the number of DIESEL server processes sharing the
	// backend (the paper evaluates 1, 3 and 5). Default 1.
	DieselServers int
	// ObjStoreDir, when non-empty, stores chunks on disk under this
	// directory; otherwise chunks live in memory.
	ObjStoreDir string
	// SSDCacheBytes, when positive, layers a fast LRU tier of this
	// capacity over the chunk store — the server-side HDD/SSD cache of
	// Figure 4.
	SSDCacheBytes int64
	// CacheSpillDir, when non-empty (with SSDCacheBytes > 0), adds a
	// local-disk spill tier under the fast tier: eviction victims demote
	// into an append-only spill log there and are served back by pread
	// before the slow tier is consulted; a redeploy over the same
	// directory rewarms the tier from its crash-safe manifest.
	CacheSpillDir string
	// CacheSpillBytes bounds the spill tier's disk usage (0 = unlimited).
	CacheSpillBytes int64
	// Throttle, when non-nil, wraps the slow tier with modeled latency
	// and bandwidth so examples show tiering effects in real time.
	Throttle *objstore.Throttled
}

// Deployment is a running DIESEL stack.
type Deployment struct {
	kvServers []*kvstore.Server
	kvCluster *kvstore.Cluster
	registry  *etcd.Server
	servers   []*server.RPCServer
	objects   objstore.Store
	tiered    *objstore.Tiered
	jobs      *server.JobRegistry
}

// Deploy starts all components on loopback ephemeral ports.
func Deploy(cfg Config) (*Deployment, error) {
	if cfg.KVNodes < 1 {
		cfg.KVNodes = 2
	}
	if cfg.DieselServers < 1 {
		cfg.DieselServers = 1
	}
	d := &Deployment{}
	fail := func(err error) (*Deployment, error) {
		d.Close()
		return nil, err
	}

	// Metadata KV cluster.
	addrs := make([]string, cfg.KVNodes)
	for i := range cfg.KVNodes {
		s, err := kvstore.NewServer("127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("core: kv node %d: %w", i, err))
		}
		d.kvServers = append(d.kvServers, s)
		addrs[i] = s.Addr()
	}
	kvc, err := kvstore.DialCluster(addrs, 2)
	if err != nil {
		return fail(err)
	}
	d.kvCluster = kvc

	// Object storage, optionally tiered.
	var objects objstore.Store
	if cfg.ObjStoreDir != "" {
		disk, err := objstore.NewDisk(cfg.ObjStoreDir)
		if err != nil {
			return fail(err)
		}
		objects = disk
	} else {
		objects = objstore.NewMemory()
	}
	if cfg.Throttle != nil {
		cfg.Throttle.Base = objects
		objects = cfg.Throttle
	}
	if cfg.SSDCacheBytes > 0 {
		d.tiered = objstore.NewTiered(objstore.NewMemory(), objects, cfg.SSDCacheBytes)
		if cfg.CacheSpillDir != "" {
			if _, err := d.tiered.EnableSpill(cfg.CacheSpillDir, cfg.CacheSpillBytes); err != nil {
				return fail(fmt.Errorf("core: cache spill tier: %w", err))
			}
		}
		// The tier's metric families register here, not in every binary:
		// anything that deploys through core scrapes them for free.
		d.tiered.RegisterMetrics(obs.Default())
		objects = d.tiered
	}
	d.objects = objects

	// Registry.
	reg, err := etcd.NewServer("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	d.registry = reg

	// DIESEL servers (stateless; they share the KV cluster and store).
	// The shared core carries one job registry backed by the deployment's
	// configuration registry, so every server RPC front-end sees the same
	// roster — jobs register through any server and appear on all.
	core := server.New(kvc, objects, func() int64 { return time.Now().UnixNano() })
	d.jobs = core.EnableJobs(etcd.InProcess{R: reg.Registry()}, 0)
	d.jobs.StartSweeper(0)
	for i := range cfg.DieselServers {
		rpc, err := server.NewRPC(core, "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("core: diesel server %d: %w", i, err))
		}
		d.servers = append(d.servers, rpc)
	}
	return d, nil
}

// ServerAddrs returns the DIESEL server addresses.
func (d *Deployment) ServerAddrs() []string {
	out := make([]string, len(d.servers))
	for i, s := range d.servers {
		out[i] = s.Addr()
	}
	return out
}

// RegistryAddr returns the configuration registry's address.
func (d *Deployment) RegistryAddr() string { return d.registry.Addr() }

// Registry returns the in-process registry (for task setup).
func (d *Deployment) Registry() *etcd.Registry { return d.registry.Registry() }

// Server returns the first DIESEL server's core, for administrative
// operations in tests and tools.
func (d *Deployment) Server() *server.Server { return d.servers[0].S }

// JobRegistry returns the deployment-wide job roster.
func (d *Deployment) JobRegistry() *server.JobRegistry { return d.jobs }

// Servers returns the DIESEL RPC servers (for scripted kill/restart
// fault windows in the load harness).
func (d *Deployment) Servers() []*server.RPCServer { return d.servers }

// Tiered returns the server-side cache tier, if configured.
func (d *Deployment) Tiered() *objstore.Tiered { return d.tiered }

// KVCluster returns the metadata cluster client (for failure injection
// and inspection).
func (d *Deployment) KVCluster() *kvstore.Cluster { return d.kvCluster }

// KVServers returns the metadata nodes (for failure injection).
func (d *Deployment) KVServers() []*kvstore.Server { return d.kvServers }

// NewClient opens a libDIESEL context against this deployment.
func (d *Deployment) NewClient(dataset string, rank int) (*client.Client, error) {
	return d.NewClientDialer(dataset, rank, nil)
}

// NewClientDialer is NewClient with a replacement connection dialer —
// the load harness passes a wire.FaultGate dialer here so scripted
// network-fault windows reach every client connection.
func (d *Deployment) NewClientDialer(dataset string, rank int, dial func(addr string) (net.Conn, error)) (*client.Client, error) {
	return client.Connect(client.Options{
		User: "core", Key: "core",
		Servers: d.ServerAddrs(),
		Dataset: dataset,
		Rank:    rank,
		Dialer:  dial,
	})
}

// Task is a DLT task: clients spread over simulated nodes with the
// task-grained distributed cache joined.
type Task struct {
	Clients []*client.Client
	Peers   []*dcache.Peer
}

// TaskConfig lays out a DLT task.
type TaskConfig struct {
	Dataset        string
	Nodes          int // simulated physical nodes
	ClientsPerNode int // I/O processes per node
	Policy         dcache.Policy
	CapacityBytes  int64 // per-master cache bound (0 = unlimited)
	// JobID registers the task as a training job in the server's job
	// registry (every client connection carries the identity, rank 0
	// heartbeats the lease). Empty means anonymous. It also keys the
	// task's cache membership, so two jobs may share one dataset.
	JobID string
	// Tenant attributes the task's traffic for per-tenant quotas.
	Tenant string
	// SpillDir, when non-empty, gives each node's cache master a
	// local-SSD spill tier rooted at SpillDir/<node>: RAM eviction
	// victims demote into an append-only spill log there, spilled chunks
	// are served back by pread, and a restarted task over the same
	// directory rewarms its cache without refetching from the servers.
	// Ignored when Shared is set — enable spill on the SharedCache.
	SpillDir string
	// SpillBytes bounds each master's spill tier on disk (0 = unlimited).
	SpillBytes int64
	// SpillPromoteAfter is the number of spill-tier reads after which a
	// chunk is promoted back to RAM (0 = default, negative = never).
	SpillPromoteAfter int
	// Shared, when non-nil, joins this task's cache masters to a
	// process-wide shared chunk cache instead of private per-master
	// stores; see dcache.SharedCache. The deployment's job registry is
	// installed as the cache's refcount source.
	Shared *dcache.SharedCache
	// Dialer, when non-nil, replaces the TCP dialer of every task
	// client's server connections (fault injection).
	Dialer func(addr string) (net.Conn, error)
}

// StartTask downloads the dataset's snapshot into every client, joins the
// distributed cache (one master per node, Figure 7), and installs the
// cache as each client's reader.
func (d *Deployment) StartTask(cfg TaskConfig) (*Task, error) {
	if cfg.Nodes < 1 || cfg.ClientsPerNode < 1 {
		return nil, errors.New("core: task needs at least one node and one client")
	}
	total := cfg.Nodes * cfg.ClientsPerNode
	t := &Task{}
	reg := etcd.InProcess{R: d.registry.Registry()}
	// Task identity must be unique per job: two jobs training on the same
	// dataset are distinct tasks (own barriers, own master elections) even
	// when they share a chunk cache.
	taskID := "task-" + cfg.Dataset
	if cfg.JobID != "" {
		taskID = "task-" + cfg.JobID
	}
	if cfg.Shared != nil && d.jobs != nil {
		cfg.Shared.SetRefSource(d.jobs)
	}

	type result struct {
		rank int
		peer *dcache.Peer
		err  error
	}
	results := make(chan result, total)
	for rank := range total {
		cl, err := client.Connect(client.Options{
			User: "core", Key: "core",
			Servers: d.ServerAddrs(),
			Dataset: cfg.Dataset,
			JobID:   cfg.JobID,
			Tenant:  cfg.Tenant,
			Rank:    rank,
			Dialer:  cfg.Dialer,
		})
		if err != nil {
			t.Close()
			return nil, err
		}
		if _, err := cl.DownloadSnapshot(); err != nil {
			cl.Close()
			t.Close()
			return nil, err
		}
		t.Clients = append(t.Clients, cl)
		node := fmt.Sprintf("node%03d", rank/cfg.ClientsPerNode)
		var spillDir string
		if cfg.SpillDir != "" && cfg.Shared == nil {
			// One spill log per simulated node, shared by nothing else:
			// the node's elected master owns it exclusively.
			spillDir = filepath.Join(cfg.SpillDir, node)
		}
		go func(rank int, cl *client.Client) {
			p, err := dcache.Join(cl.DefaultDataset(), reg, dcache.Config{
				TaskID:            taskID,
				NodeID:            node,
				Rank:              rank,
				TotalClients:      total,
				Policy:            cfg.Policy,
				CapacityBytes:     cfg.CapacityBytes,
				SpillDir:          spillDir,
				SpillBytes:        cfg.SpillBytes,
				SpillPromoteAfter: cfg.SpillPromoteAfter,
				Shared:            cfg.Shared,
			})
			results <- result{rank: rank, peer: p, err: err}
		}(rank, cl)
	}
	t.Peers = make([]*dcache.Peer, total)
	for range total {
		r := <-results
		if r.err != nil {
			t.Close()
			return nil, fmt.Errorf("core: join rank %d: %w", r.rank, r.err)
		}
		t.Peers[r.rank] = r.peer
		t.Clients[r.rank].SetReader(r.peer)
	}
	return t, nil
}

// Close shuts the task's peers and clients down.
func (t *Task) Close() {
	for _, p := range t.Peers {
		if p != nil {
			p.Close()
		}
	}
	for _, c := range t.Clients {
		if c != nil {
			c.Close()
		}
	}
}

// Close tears the deployment down in dependency order.
func (d *Deployment) Close() {
	if d.jobs != nil {
		d.jobs.StopSweeper()
	}
	for _, s := range d.servers {
		s.Close()
	}
	if d.tiered != nil {
		d.tiered.Close() // leaves the spill manifest for the next deploy
	}
	if d.registry != nil {
		d.registry.Close()
	}
	if d.kvCluster != nil {
		d.kvCluster.Close()
	}
	for _, s := range d.kvServers {
		s.Close()
	}
}
