package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"diesel/internal/dcache"
	"diesel/internal/objstore"
	"diesel/internal/trace"
)

func deploy(t *testing.T, cfg Config) *Deployment {
	t.Helper()
	d, err := Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestDeployDefaults(t *testing.T) {
	d := deploy(t, Config{})
	if len(d.ServerAddrs()) != 1 {
		t.Errorf("servers = %d", len(d.ServerAddrs()))
	}
	if len(d.KVServers()) != 2 {
		t.Errorf("kv nodes = %d", len(d.KVServers()))
	}
	if d.RegistryAddr() == "" {
		t.Error("registry not started")
	}
	if d.Registry() == nil || d.Server() == nil || d.KVCluster() == nil {
		t.Error("component accessors returned nil")
	}
	if n := d.KVCluster().NodeCount(); n != 2 {
		t.Errorf("KV cluster has %d nodes", n)
	}
}

func TestEndToEndWriteReadThroughDeployment(t *testing.T) {
	d := deploy(t, Config{KVNodes: 3, DieselServers: 2})
	spec := trace.Spec{Name: "e2e", NumFiles: 150, Classes: 5, MeanFileSize: 600, SizeSpread: 0.4, Seed: 8}

	err := trace.Write(spec, func(w int) (trace.Putter, error) {
		c, err := d.NewClient("e2e", w)
		if err != nil {
			return nil, err
		}
		return c, nil
	}, 4)
	if err != nil {
		t.Fatal(err)
	}

	reader, err := d.NewClient("e2e", 100)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	order := make([]int, spec.NumFiles)
	for i := range order {
		order[i] = i
	}
	if err := trace.ReadOrder(spec, func(int) (trace.Getter, error) { return reader, nil }, 3, order); err != nil {
		t.Fatal(err)
	}
	rec, err := reader.DatasetRecord()
	if err != nil || rec.FileCount != uint64(spec.NumFiles) {
		t.Fatalf("record = %+v, %v", rec, err)
	}
}

func TestStartTaskFullPipeline(t *testing.T) {
	d := deploy(t, Config{})
	spec := trace.Spec{Name: "task", NumFiles: 120, Classes: 4, MeanFileSize: 400, Seed: 5}
	w, err := d.NewClient("task", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range spec.NumFiles {
		if err := w.Put(spec.FileName(i), spec.FileData(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	task, err := d.StartTask(TaskConfig{
		Dataset: "task", Nodes: 2, ClientsPerNode: 2, Policy: dcache.OnDemand,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer task.Close()

	if len(task.Clients) != 4 || len(task.Peers) != 4 {
		t.Fatalf("task size %d/%d", len(task.Clients), len(task.Peers))
	}
	masters := 0
	for _, p := range task.Peers {
		if p.IsMaster() {
			masters++
		}
	}
	if masters != 2 {
		t.Errorf("masters = %d, want 2 (one per node)", masters)
	}

	// Shuffled epoch through the cache, verified.
	plan, err := task.Clients[0].ShufflePlan(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	order := plan.Paths(task.Clients[0].Snapshot())
	for _, path := range order {
		b, err := task.Clients[3].Get(path)
		if err != nil {
			t.Fatalf("Get(%q): %v", path, err)
		}
		if len(b) != spec.MeanFileSize {
			t.Fatalf("file %q = %d bytes", path, len(b))
		}
	}
	var hits uint64
	for _, p := range task.Peers {
		hits += p.Stats.LocalHits.Load() + p.Stats.PeerReads.Load()
	}
	if hits == 0 {
		t.Error("task reads bypassed the distributed cache")
	}
}

func TestDeployWithDiskAndSSDTier(t *testing.T) {
	d := deploy(t, Config{
		ObjStoreDir:   t.TempDir(),
		SSDCacheBytes: 64 << 10,
		Throttle:      &objstore.Throttled{Latency: 200 * time.Microsecond},
	})
	cl, err := d.NewClient("ds", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	content := bytes.Repeat([]byte("x"), 2000)
	for i := range 10 {
		if err := cl.Put(fmt.Sprintf("f%02d", i), content); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	// A batched read merges into a whole-chunk fetch, which promotes the
	// chunk into the SSD tier; the second batch hits it.
	paths := make([]string, 10)
	for i := range paths {
		paths[i] = fmt.Sprintf("f%02d", i)
	}
	if _, err := cl.GetBatch(paths); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetBatch(paths); err != nil {
		t.Fatal(err)
	}
	if d.Tiered().Hits == 0 {
		t.Error("SSD tier never hit")
	}
}

func TestTaskValidation(t *testing.T) {
	d := deploy(t, Config{})
	if _, err := d.StartTask(TaskConfig{Dataset: "x"}); err == nil {
		t.Error("zero-node task accepted")
	}
}
