package etcd

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegistryPutGetDelete(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if v := r.Put("k", []byte("v1")); v != 1 {
		t.Errorf("first Put version = %d", v)
	}
	if v := r.Put("k", []byte("v2")); v != 2 {
		t.Errorf("second Put version = %d", v)
	}
	e, err := r.Get("k")
	if err != nil || string(e.Value) != "v2" || e.Version != 2 {
		t.Errorf("Get = %+v, %v", e, err)
	}
	if !r.Delete("k") || r.Delete("k") {
		t.Error("Delete semantics broken")
	}
}

func TestRegistryList(t *testing.T) {
	r := NewRegistry()
	r.Put("cache/task1/node2", []byte("b"))
	r.Put("cache/task1/node1", []byte("a"))
	r.Put("cache/task2/node1", []byte("c"))
	got := r.List("cache/task1/")
	if len(got) != 2 {
		t.Fatalf("List = %d entries", len(got))
	}
	if got[0].Key != "cache/task1/node1" || got[1].Key != "cache/task1/node2" {
		t.Errorf("List not sorted: %v, %v", got[0].Key, got[1].Key)
	}
}

func TestRegistryWatch(t *testing.T) {
	r := NewRegistry()
	ch, cancel := r.Watch("jobs/")
	defer cancel()
	r.Put("other/x", []byte("no"))
	r.Put("jobs/1", []byte("yes"))
	select {
	case e := <-ch:
		if e.Key != "jobs/1" {
			t.Errorf("watch delivered %q", e.Key)
		}
	case <-time.After(time.Second):
		t.Fatal("watch never fired")
	}
	select {
	case e := <-ch:
		t.Fatalf("unexpected extra event %q", e.Key)
	default:
	}
	cancel()
	r.Put("jobs/2", []byte("after-cancel"))
	select {
	case e, ok := <-ch:
		if ok {
			t.Fatalf("event after cancel: %q", e.Key)
		}
	default:
	}
}

func TestRegistryCompareAndPut(t *testing.T) {
	r := NewRegistry()
	v, ok := r.CompareAndPut("leader", 0, []byte("n1"))
	if !ok || v != 1 {
		t.Fatalf("initial CAP = %d, %v", v, ok)
	}
	// A second contender with expect=0 must lose.
	if _, ok := r.CompareAndPut("leader", 0, []byte("n2")); ok {
		t.Fatal("stale CAP succeeded")
	}
	e, _ := r.Get("leader")
	if string(e.Value) != "n1" {
		t.Errorf("leader = %q", e.Value)
	}
	// Correct expected version wins.
	if _, ok := r.CompareAndPut("leader", 1, []byte("n3")); !ok {
		t.Fatal("CAP with correct version failed")
	}
}

// TestRegistryCAPRace: exactly one of N concurrent contenders must win the
// initial claim — the property master-client election depends on.
func TestRegistryCAPRace(t *testing.T) {
	r := NewRegistry()
	const contenders = 32
	wins := make(chan int, contenders)
	var wg sync.WaitGroup
	for i := range contenders {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := r.CompareAndPut("election", 0, fmt.Appendf(nil, "node%d", i)); ok {
				wins <- i
			}
		}()
	}
	wg.Wait()
	close(wins)
	count := 0
	for range wins {
		count++
	}
	if count != 1 {
		t.Fatalf("%d contenders won; want exactly 1", count)
	}
}

func TestServerClientRoundTrip(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Put("cfg/chunk-size", []byte("4194304")); err != nil {
		t.Fatal(err)
	}
	e, err := c.Get("cfg/chunk-size")
	if err != nil || string(e.Value) != "4194304" || e.Version != 1 {
		t.Fatalf("Get = %+v, %v", e, err)
	}
	if _, err := c.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key over RPC: %v", err)
	}

	c.Put("cfg/a", []byte("1"))
	c.Put("cfg/b", []byte("2"))
	ents, err := c.List("cfg/")
	if err != nil || len(ents) != 3 {
		t.Fatalf("List = %d entries, %v", len(ents), err)
	}

	_, ok, err := c.CompareAndPut("lock", 0, []byte("me"))
	if err != nil || !ok {
		t.Fatalf("CAP over RPC: %v %v", ok, err)
	}
	_, ok, err = c.CompareAndPut("lock", 0, []byte("you"))
	if err != nil || ok {
		t.Fatalf("stale CAP over RPC succeeded")
	}

	gone, err := c.Delete("cfg/a")
	if err != nil || !gone {
		t.Fatalf("Delete = %v, %v", gone, err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 200 {
				k := fmt.Sprintf("w%d/k%d", w, i)
				r.Put(k, []byte("v"))
				if _, err := r.Get(k); err != nil {
					t.Errorf("Get(%q): %v", k, err)
					return
				}
				r.List(fmt.Sprintf("w%d/", w))
			}
		}()
	}
	wg.Wait()
	if got := r.Revision(); got != 8*200 {
		t.Errorf("Revision = %d, want %d", got, 8*200)
	}
}
