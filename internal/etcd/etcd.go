// Package etcd implements the small configuration and membership registry
// DIESEL uses: the paper stores system configuration in an ETCD server, and
// the task-grained distributed cache registers clients through it (lines
// labeled 1 in Figure 7).
//
// It is a versioned key-value map with watches, embeddable in-process or
// exposed over the wire protocol. It is intentionally not a consensus
// system: the paper uses a single ETCD endpoint per deployment, and the
// registry's job here is membership + configuration, both of which the
// tests exercise through failure injection at the consumer layer.
package etcd

import (
	"errors"
	"sort"
	"strings"
	"sync"

	"diesel/internal/wire"
)

// Entry is one registry record.
type Entry struct {
	Key     string
	Value   []byte
	Version uint64 // increments on every update of this key
}

// ErrNotFound is returned for missing keys.
var ErrNotFound = errors.New("etcd: key not found")

// Registry is the in-process implementation. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	data     map[string]Entry
	revision uint64
	watchers map[string][]chan Entry // prefix → subscribers
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		data:     make(map[string]Entry),
		watchers: make(map[string][]chan Entry),
	}
}

// Put stores value under key and returns the key's new version. Watchers
// whose prefix matches are notified asynchronously (the channel send never
// blocks Put; slow watchers miss intermediate versions, never final ones,
// because each notification carries the full entry).
func (r *Registry) Put(key string, value []byte) uint64 {
	r.mu.Lock()
	e := r.data[key]
	e.Key = key
	e.Value = append([]byte(nil), value...)
	e.Version++
	r.revision++
	r.data[key] = e
	var notify []chan Entry
	for prefix, chans := range r.watchers {
		if strings.HasPrefix(key, prefix) {
			notify = append(notify, chans...)
		}
	}
	r.mu.Unlock()
	for _, ch := range notify {
		select {
		case ch <- e:
		default:
		}
	}
	return e.Version
}

// Get returns the entry for key.
func (r *Registry) Get(key string) (Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.data[key]
	if !ok {
		return Entry{}, ErrNotFound
	}
	return e, nil
}

// Delete removes key, reporting whether it existed.
func (r *Registry) Delete(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.data[key]
	delete(r.data, key)
	if ok {
		r.revision++
	}
	return ok
}

// List returns entries with the given key prefix, sorted by key.
func (r *Registry) List(prefix string) []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Entry
	for k, e := range r.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Watch subscribes to updates of keys under prefix. The returned cancel
// function must be called to release the subscription.
func (r *Registry) Watch(prefix string) (<-chan Entry, func()) {
	ch := make(chan Entry, 64)
	r.mu.Lock()
	r.watchers[prefix] = append(r.watchers[prefix], ch)
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		chans := r.watchers[prefix]
		for i, c := range chans {
			if c == ch {
				r.watchers[prefix] = append(chans[:i], chans[i+1:]...)
				break
			}
		}
	}
	return ch, cancel
}

// CompareAndPut stores value only if the key's current version equals
// expect (0 means "must not exist"). It returns the new version and whether
// the write happened. The distributed cache uses it to elect one master
// client per node without races.
func (r *Registry) CompareAndPut(key string, expect uint64, value []byte) (uint64, bool) {
	r.mu.Lock()
	e := r.data[key]
	if e.Version != expect {
		r.mu.Unlock()
		return e.Version, false
	}
	e.Key = key
	e.Value = append([]byte(nil), value...)
	e.Version++
	r.revision++
	r.data[key] = e
	var notify []chan Entry
	for prefix, chans := range r.watchers {
		if strings.HasPrefix(key, prefix) {
			notify = append(notify, chans...)
		}
	}
	r.mu.Unlock()
	for _, ch := range notify {
		select {
		case ch <- e:
		default:
		}
	}
	return e.Version, true
}

// Revision returns the global revision counter (total successful writes).
func (r *Registry) Revision() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.revision
}

// --- networked façade ---

const (
	methodPut  = "etcd.put"
	methodGet  = "etcd.get"
	methodDel  = "etcd.del"
	methodList = "etcd.list"
	methodCAP  = "etcd.cap"
)

// Server exposes a Registry over the wire protocol.
type Server struct {
	reg  *Registry
	rpc  *wire.Server
	addr string
}

// NewServer starts a registry server on addr.
func NewServer(addr string) (*Server, error) {
	s := &Server{reg: NewRegistry(), rpc: wire.NewServer()}
	s.register()
	bound, err := s.rpc.Listen(addr)
	if err != nil {
		return nil, err
	}
	s.addr = bound
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.addr }

// Registry returns the backing in-process registry.
func (s *Server) Registry() *Registry { return s.reg }

// Close stops the server.
func (s *Server) Close() error { return s.rpc.Close() }

func (s *Server) register() {
	s.rpc.Handle(methodPut, func(p []byte) ([]byte, error) {
		d := wire.NewDecoder(p)
		key := d.String()
		val := d.Bytes32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		v := s.reg.Put(key, val)
		e := wire.NewEncoder(8)
		e.Uint64(v)
		return e.Bytes(), nil
	})
	s.rpc.Handle(methodGet, func(p []byte) ([]byte, error) {
		d := wire.NewDecoder(p)
		key := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		ent, err := s.reg.Get(key)
		e := wire.NewEncoder(32)
		if err != nil {
			e.Bool(false)
			e.Bytes32(nil)
			e.Uint64(0)
		} else {
			e.Bool(true)
			e.Bytes32(ent.Value)
			e.Uint64(ent.Version)
		}
		return e.Bytes(), nil
	})
	s.rpc.Handle(methodDel, func(p []byte) ([]byte, error) {
		d := wire.NewDecoder(p)
		key := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		ok := s.reg.Delete(key)
		e := wire.NewEncoder(1)
		e.Bool(ok)
		return e.Bytes(), nil
	})
	s.rpc.Handle(methodList, func(p []byte) ([]byte, error) {
		d := wire.NewDecoder(p)
		prefix := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		ents := s.reg.List(prefix)
		e := wire.NewEncoder(256)
		e.Uint32(uint32(len(ents)))
		for _, ent := range ents {
			e.String(ent.Key)
			e.Bytes32(ent.Value)
			e.Uint64(ent.Version)
		}
		return e.Bytes(), nil
	})
	s.rpc.Handle(methodCAP, func(p []byte) ([]byte, error) {
		d := wire.NewDecoder(p)
		key := d.String()
		expect := d.Uint64()
		val := d.Bytes32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		v, ok := s.reg.CompareAndPut(key, expect, val)
		e := wire.NewEncoder(9)
		e.Bool(ok)
		e.Uint64(v)
		return e.Bytes(), nil
	})
}

// Client talks to a registry Server.
type Client struct{ c *wire.Client }

// Dial connects to a registry server.
func Dial(addr string) (*Client, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Put stores value under key and returns the new version.
func (cl *Client) Put(key string, value []byte) (uint64, error) {
	e := wire.NewEncoder(len(key) + len(value) + 16)
	e.String(key)
	e.Bytes32(value)
	resp, err := cl.c.Call(methodPut, e.Bytes())
	if err != nil {
		return 0, err
	}
	d := wire.NewDecoder(resp)
	return d.Uint64(), d.Err()
}

// Get fetches key.
func (cl *Client) Get(key string) (Entry, error) {
	e := wire.NewEncoder(len(key) + 8)
	e.String(key)
	resp, err := cl.c.Call(methodGet, e.Bytes())
	if err != nil {
		return Entry{}, err
	}
	d := wire.NewDecoder(resp)
	ok := d.Bool()
	val := append([]byte(nil), d.Bytes32()...)
	ver := d.Uint64()
	if err := d.Err(); err != nil {
		return Entry{}, err
	}
	if !ok {
		return Entry{}, ErrNotFound
	}
	return Entry{Key: key, Value: val, Version: ver}, nil
}

// Delete removes key.
func (cl *Client) Delete(key string) (bool, error) {
	e := wire.NewEncoder(len(key) + 8)
	e.String(key)
	resp, err := cl.c.Call(methodDel, e.Bytes())
	if err != nil {
		return false, err
	}
	d := wire.NewDecoder(resp)
	return d.Bool(), d.Err()
}

// List returns entries under prefix.
func (cl *Client) List(prefix string) ([]Entry, error) {
	e := wire.NewEncoder(len(prefix) + 8)
	e.String(prefix)
	resp, err := cl.c.Call(methodList, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(resp)
	n := int(d.Uint32())
	out := make([]Entry, 0, n)
	for range n {
		k := d.String()
		v := append([]byte(nil), d.Bytes32()...)
		ver := d.Uint64()
		out = append(out, Entry{Key: k, Value: v, Version: ver})
	}
	return out, d.Err()
}

// CompareAndPut performs an atomic conditional write.
func (cl *Client) CompareAndPut(key string, expect uint64, value []byte) (uint64, bool, error) {
	e := wire.NewEncoder(len(key) + len(value) + 24)
	e.String(key)
	e.Uint64(expect)
	e.Bytes32(value)
	resp, err := cl.c.Call(methodCAP, e.Bytes())
	if err != nil {
		return 0, false, err
	}
	d := wire.NewDecoder(resp)
	ok := d.Bool()
	v := d.Uint64()
	return v, ok, d.Err()
}

// Close tears down the connection.
func (cl *Client) Close() error { return cl.c.Close() }

// InProcess adapts a Registry to the error-returning interface shared with
// Client, so components can take either a local registry or a networked
// one.
type InProcess struct{ R *Registry }

// Put stores value under key.
func (a InProcess) Put(key string, value []byte) (uint64, error) {
	return a.R.Put(key, value), nil
}

// Get fetches key.
func (a InProcess) Get(key string) (Entry, error) { return a.R.Get(key) }

// Delete removes key.
func (a InProcess) Delete(key string) (bool, error) { return a.R.Delete(key), nil }

// List returns entries under prefix.
func (a InProcess) List(prefix string) ([]Entry, error) { return a.R.List(prefix), nil }

// CompareAndPut performs an atomic conditional write.
func (a InProcess) CompareAndPut(key string, expect uint64, value []byte) (uint64, bool, error) {
	v, ok := a.R.CompareAndPut(key, expect, value)
	return v, ok, nil
}
