package objstore

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"
)

var errSpillEnabled = errors.New("objstore: spill tier already enabled")

// Tiered layers a bounded fast store (SSD) over a slow store (HDD),
// implementing the DIESEL server cache of Figure 4: reads check the fast
// tier first; on a miss the object is served from the slow tier and
// promoted, evicting least-recently-used objects when the fast tier's
// capacity is exceeded. Writes go to the slow tier (the durable home) and
// the fast tier is populated only by reads, matching a cache — not a
// write buffer.
type Tiered struct {
	fast, slow Store

	mu       sync.Mutex
	capacity int64
	used     int64
	lru      *list.List // front = most recent; values are *tieredEntry
	index    map[string]*list.Element

	// Hits and Misses count fast-tier outcomes for experiments.
	Hits, Misses uint64

	// spill, when set (EnableSpill), is the local-disk tier under the
	// fast tier: eviction victims demote there and are served back by
	// pread before the slow tier is consulted. See spill.go.
	spill atomic.Pointer[tieredSpill]
}

type tieredEntry struct {
	key  string
	size int64
}

// NewTiered builds a tiered store with the given fast-tier byte capacity.
func NewTiered(fast, slow Store, capacity int64) *Tiered {
	return &Tiered{
		fast:     fast,
		slow:     slow,
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[string]*list.Element),
	}
}

// Put implements Store: writes land in the slow tier; a stale fast copy is
// invalidated so readers never see old data.
func (t *Tiered) Put(key string, data []byte) error {
	if err := t.slow.Put(key, data); err != nil {
		return err
	}
	t.mu.Lock()
	if el, ok := t.index[key]; ok {
		t.removeLocked(el)
	}
	t.mu.Unlock()
	t.spillRemove(key)
	return t.fast.Delete(key)
}

// Get implements Store.
func (t *Tiered) Get(key string) ([]byte, error) {
	t.mu.Lock()
	el, ok := t.index[key]
	if ok {
		t.lru.MoveToFront(el)
		t.Hits++
	} else {
		t.Misses++
	}
	t.mu.Unlock()

	if ok {
		b, err := t.fast.Get(key)
		if err == nil {
			return b, nil
		}
		// Fast tier lied (e.g. wiped externally); fall through to slow.
	}
	// The spill tier answers before the slow tier pays HDD latency: a
	// previously evicted (or pre-restart) object comes back checksum-
	// verified from local disk and is re-promoted into the fast tier.
	if b, ok := t.spillGet(key); ok {
		t.promote(key, b)
		return b, nil
	}
	b, err := t.slow.Get(key)
	if err != nil {
		return nil, err
	}
	t.promote(key, b)
	return b, nil
}

// GetRange implements Store. Ranges are served from whichever tier holds
// the object; range reads do not promote, since promotion would read the
// whole object and defeat the point of a partial read.
func (t *Tiered) GetRange(key string, off, n int64) ([]byte, error) {
	t.mu.Lock()
	el, ok := t.index[key]
	if ok {
		t.lru.MoveToFront(el)
		t.Hits++
	} else {
		t.Misses++
	}
	t.mu.Unlock()
	if ok {
		if b, err := t.fast.GetRange(key, off, n); err == nil {
			return b, nil
		}
	}
	// Like the fast tier, the spill tier serves ranges without promoting.
	if b, ok := t.spillGetRange(key, off, n); ok {
		return b, nil
	}
	return t.slow.GetRange(key, off, n)
}

// promote copies an object into the fast tier, evicting LRU entries to
// make room. Objects larger than the whole capacity are not cached.
func (t *Tiered) promote(key string, data []byte) {
	size := int64(len(data))
	if size > t.capacity {
		return
	}
	t.mu.Lock()
	if _, dup := t.index[key]; dup {
		t.mu.Unlock()
		return
	}
	var evict []string
	for t.used+size > t.capacity {
		back := t.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*tieredEntry)
		evict = append(evict, e.key)
		t.removeLocked(back)
	}
	el := t.lru.PushFront(&tieredEntry{key: key, size: size})
	t.index[key] = el
	t.used += size
	t.mu.Unlock()

	for _, k := range evict {
		// Demote-on-evict: hand the victim's bytes to the spill tier
		// before they leave the fast tier (a no-op without one, and a
		// write-free index touch when the key was spilled before).
		if t.spill.Load() != nil {
			if b, err := t.fast.Get(k); err == nil {
				t.spillDemote(k, b)
			}
		}
		t.fast.Delete(k)
	}
	t.fast.Put(key, data)
}

// removeLocked unlinks an LRU element; caller holds t.mu.
func (t *Tiered) removeLocked(el *list.Element) {
	e := el.Value.(*tieredEntry)
	t.lru.Remove(el)
	delete(t.index, e.key)
	t.used -= e.size
}

// Delete implements Store: removes from both tiers.
func (t *Tiered) Delete(key string) error {
	t.mu.Lock()
	if el, ok := t.index[key]; ok {
		t.removeLocked(el)
	}
	t.mu.Unlock()
	t.spillRemove(key)
	t.fast.Delete(key)
	return t.slow.Delete(key)
}

// List implements Store, listing the durable (slow) tier.
func (t *Tiered) List(prefix string) ([]string, error) { return t.slow.List(prefix) }

// Size implements Store.
func (t *Tiered) Size(key string) (int64, error) { return t.slow.Size(key) }

// FastBytes reports the bytes currently cached in the fast tier.
func (t *Tiered) FastBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.used
}

// HitCount returns the fast-tier hit count under the lock; the public
// Hits field stays for callers that read it while holding no lock (tests
// do so after quiescing).
func (t *Tiered) HitCount() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Hits
}

// MissCount returns the fast-tier miss count under the lock.
func (t *Tiered) MissCount() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Misses
}

// HitRate returns fast-tier hits / (hits+misses), or 0 before any reads.
func (t *Tiered) HitRate() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits) / float64(total)
}
