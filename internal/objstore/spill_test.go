package objstore

import (
	"bytes"
	"fmt"
	"testing"
)

// TestTieredSpillAbsorbsEvictions: objects evicted from the fast tier
// come back from the spill tier without touching the slow store.
func TestTieredSpillAbsorbsEvictions(t *testing.T) {
	fast, slow := NewMemory(), NewMemory()
	tr := NewTiered(fast, slow, 2*100)
	if _, err := tr.EnableSpill(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.EnableSpill(t.TempDir(), 0); err == nil {
		t.Fatal("second EnableSpill succeeded")
	}

	objs := map[string][]byte{}
	for i := range 8 {
		k := fmt.Sprintf("ds/chunk%02d", i)
		objs[k] = bytes.Repeat([]byte{byte(i)}, 100)
		if err := tr.Put(k, objs[k]); err != nil {
			t.Fatal(err)
		}
	}
	// First pass: every Get promotes, evicting earlier keys into spill.
	for k := range objs {
		if _, err := tr.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	if st := tr.SpillStats(); !st.Enabled || st.Demotions == 0 || st.Entries == 0 {
		t.Fatalf("no demotions: %+v", st)
	}
	// Second pass: fast tier holds 2 objects, spill the rest; the slow
	// store must not be consulted again.
	slowGets := slow.Snapshot().Gets
	for k, want := range objs {
		got, err := tr.Get(k)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get(%s): %v", k, err)
		}
	}
	if got := slow.Snapshot().Gets; got != slowGets {
		t.Fatalf("second pass read the slow tier: %d -> %d gets", slowGets, got)
	}
	if st := tr.SpillStats(); st.Hits == 0 {
		t.Fatalf("second pass recorded no spill hits: %+v", st)
	}

	// Ranges are served from spill too, without promotion.
	var spilled string
	for k := range objs {
		if _, err := fast.Get(k); err != nil {
			spilled = k
			break
		}
	}
	if spilled != "" {
		slowGets = slow.Snapshot().Gets
		got, err := tr.GetRange(spilled, 10, 20)
		if err != nil || !bytes.Equal(got, objs[spilled][10:30]) {
			t.Fatalf("GetRange(%s): %v", spilled, err)
		}
		if slow.Snapshot().Gets != slowGets {
			t.Fatal("range read fell through to the slow tier")
		}
	}

	per := tr.PerDatasetBytes()
	if tb := per["ds"]; tb.FastBytes == 0 || tb.SpillBytes == 0 {
		t.Fatalf("per-dataset accounting empty: %+v", per)
	}
}

// TestTieredSpillInvalidation: Put and Delete must remove the spilled
// copy, or a restart would serve stale bytes.
func TestTieredSpillInvalidation(t *testing.T) {
	dir := t.TempDir()
	fast, slow := NewMemory(), NewMemory()
	tr := NewTiered(fast, slow, 100)
	if _, err := tr.EnableSpill(dir, 0); err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{1}, 100)
	tr.Put("ds/a", old)
	tr.Get("ds/a")                               // promote
	tr.Put("ds/b", bytes.Repeat([]byte{2}, 100)) // no effect on fast
	tr.Get("ds/b")                               // evicts ds/a → spill
	if st := tr.SpillStats(); st.Entries != 1 {
		t.Fatalf("want ds/a spilled: %+v", st)
	}
	fresh := bytes.Repeat([]byte{9}, 100)
	tr.Put("ds/a", fresh) // must invalidate the spilled copy
	got, err := tr.Get("ds/a")
	if err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("Get after overwrite: %v", err)
	}
	tr.Close()

	// Restart over the same dir: the overwritten entry must not come back.
	tr2 := NewTiered(NewMemory(), slow, 100)
	if _, err := tr2.EnableSpill(dir, 0); err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	got, err = tr2.Get("ds/a")
	if err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("post-restart Get: %v (stale spill copy?)", err)
	}
}

// TestTieredSpillWarmRestart: a new Tiered over the same spill dir
// serves previously demoted objects without slow-tier reads — the
// server-side half of the warm-restart story.
func TestTieredSpillWarmRestart(t *testing.T) {
	dir := t.TempDir()
	slow := NewMemory()
	tr := NewTiered(NewMemory(), slow, 100)
	if _, err := tr.EnableSpill(dir, 0); err != nil {
		t.Fatal(err)
	}
	objs := map[string][]byte{}
	for i := range 6 {
		k := fmt.Sprintf("ds/chunk%02d", i)
		objs[k] = bytes.Repeat([]byte{byte(0x40 + i)}, 100)
		tr.Put(k, objs[k])
		tr.Get(k) // promote, evicting the previous key into spill
	}
	tr.Close()

	tr2 := NewTiered(NewMemory(), slow, 100)
	rec, err := tr2.EnableSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if rec.Entries < 5 {
		t.Fatalf("rewarmed only %d entries", rec.Entries)
	}
	if st := tr2.SpillStats(); st.RewarmEntries != rec.Entries || st.RewarmBytes == 0 {
		t.Fatalf("rewarm stats wrong: %+v", st)
	}
	slowGets := slow.Snapshot().Gets
	served := 0
	for k, want := range objs {
		got, err := tr2.Get(k)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("post-restart Get(%s): %v", k, err)
		}
		served++
	}
	// At most one object (the last promoted, never evicted) may need the
	// slow tier.
	if got := slow.Snapshot().Gets; got > slowGets+1 {
		t.Fatalf("restart refetched %d of %d objects from the slow tier", got-slowGets, served)
	}
}
