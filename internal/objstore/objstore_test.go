package objstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// storeContract runs the behaviour every Store implementation must satisfy.
func storeContract(t *testing.T, s Store) {
	t.Helper()

	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing: %v", err)
	}
	if _, err := s.Size("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size missing: %v", err)
	}
	if err := s.Delete("nope"); err != nil {
		t.Errorf("Delete missing should be nil: %v", err)
	}

	data := []byte("hello chunk world")
	if err := s.Put("ds/c1", data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("ds/c1")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	n, err := s.Size("ds/c1")
	if err != nil || n != int64(len(data)) {
		t.Fatalf("Size = %d, %v", n, err)
	}

	// Overwrite.
	if err := s.Put("ds/c1", []byte("short")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("ds/c1"); string(got) != "short" {
		t.Fatalf("overwrite failed: %q", got)
	}

	// Ranges.
	s.Put("ds/c2", []byte("0123456789"))
	for _, tc := range []struct {
		off, n int64
		want   string
	}{
		{0, 4, "0123"}, {5, 3, "567"}, {5, -1, "56789"}, {9, 100, "9"}, {10, 5, ""}, {0, 0, ""},
	} {
		got, err := s.GetRange("ds/c2", tc.off, tc.n)
		if err != nil {
			t.Errorf("GetRange(%d,%d): %v", tc.off, tc.n, err)
			continue
		}
		if string(got) != tc.want {
			t.Errorf("GetRange(%d,%d) = %q, want %q", tc.off, tc.n, got, tc.want)
		}
	}
	if _, err := s.GetRange("ds/c2", -1, 5); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := s.GetRange("ds/c2", 11, 5); err == nil {
		t.Error("offset past end accepted")
	}
	if _, err := s.GetRange("nope", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetRange missing: %v", err)
	}

	// List ordering and prefix filtering.
	s.Put("ds/c0", []byte("x"))
	s.Put("other/c9", []byte("y"))
	keys, err := s.List("ds/")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	want := []string{"ds/c0", "ds/c1", "ds/c2"}
	if len(keys) != len(want) {
		t.Fatalf("List = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("List[%d] = %q, want %q", i, keys[i], want[i])
		}
	}

	// Delete removes from listing.
	if err := s.Delete("ds/c1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("ds/c1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted object readable: %v", err)
	}
	keys, _ = s.List("ds/")
	if len(keys) != 2 {
		t.Errorf("List after delete = %v", keys)
	}
}

func TestMemoryContract(t *testing.T) { storeContract(t, NewMemory()) }

func TestDiskContract(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, d)
}

func TestTieredContract(t *testing.T) {
	storeContract(t, NewTiered(NewMemory(), NewMemory(), 1<<20))
}

func TestThrottledContract(t *testing.T) {
	storeContract(t, &Throttled{Base: NewMemory()})
}

func TestDiskRejectsEscapingKeys(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"../evil", "..", "/abs/path", "a/../../b"} {
		if err := d.Put(k, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", k)
		}
	}
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d1, _ := NewDisk(dir)
	d1.Put("a/b/c", []byte("persisted"))
	d2, _ := NewDisk(dir)
	got, err := d2.Get("a/b/c")
	if err != nil || string(got) != "persisted" {
		t.Fatalf("reopen Get = %q, %v", got, err)
	}
}

func TestMemoryQuickRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(key string, val []byte) bool {
		if err := m.Put("q/"+key, val); err != nil {
			return false
		}
		got, err := m.Get("q/" + key)
		return err == nil && bytes.Equal(got, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryIsolation(t *testing.T) {
	m := NewMemory()
	src := []byte("original")
	m.Put("k", src)
	src[0] = 'X' // caller mutates its buffer after Put
	got, _ := m.Get("k")
	if string(got) != "original" {
		t.Error("Put did not copy input")
	}
	got[0] = 'Y' // caller mutates the returned buffer
	got2, _ := m.Get("k")
	if string(got2) != "original" {
		t.Error("Get returned aliased buffer")
	}
}

func TestTieredPromotionAndEviction(t *testing.T) {
	fast, slow := NewMemory(), NewMemory()
	tr := NewTiered(fast, slow, 100)

	obj := func(i int) string { return fmt.Sprintf("o%d", i) }
	for i := range 5 {
		tr.Put(obj(i), bytes.Repeat([]byte{byte(i)}, 40))
	}
	if fast.Len() != 0 {
		t.Fatalf("writes populated fast tier: %d objects", fast.Len())
	}
	// Read 0 and 1: both promoted (80 <= 100).
	tr.Get(obj(0))
	tr.Get(obj(1))
	if fast.Len() != 2 {
		t.Fatalf("fast tier has %d objects, want 2", fast.Len())
	}
	// Read 2: evicts LRU (0).
	tr.Get(obj(2))
	if _, err := fast.Get(obj(0)); !errors.Is(err, ErrNotFound) {
		t.Error("LRU object not evicted")
	}
	if _, err := fast.Get(obj(1)); err != nil {
		t.Error("recently used object evicted")
	}
	// Touch 1 to refresh, read 3: eviction should now take 2, not 1.
	tr.Get(obj(1))
	tr.Get(obj(3))
	if _, err := fast.Get(obj(2)); !errors.Is(err, ErrNotFound) {
		t.Error("expected 2 evicted after touching 1")
	}
	if _, err := fast.Get(obj(1)); err != nil {
		t.Error("touched object was evicted")
	}
	if tr.FastBytes() > 100 {
		t.Errorf("fast tier over capacity: %d", tr.FastBytes())
	}
}

func TestTieredHitRate(t *testing.T) {
	tr := NewTiered(NewMemory(), NewMemory(), 1000)
	tr.Put("a", []byte("data"))
	tr.Get("a") // miss + promote
	tr.Get("a") // hit
	tr.Get("a") // hit
	if got := tr.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("HitRate = %f, want 2/3", got)
	}
}

func TestTieredOversizeObjectNotCached(t *testing.T) {
	fast := NewMemory()
	tr := NewTiered(fast, NewMemory(), 10)
	tr.Put("big", make([]byte, 100))
	if _, err := tr.Get("big"); err != nil {
		t.Fatal(err)
	}
	if fast.Len() != 0 {
		t.Error("oversize object cached")
	}
}

func TestTieredPutInvalidatesFastCopy(t *testing.T) {
	tr := NewTiered(NewMemory(), NewMemory(), 1000)
	tr.Put("k", []byte("v1"))
	tr.Get("k") // promote v1
	tr.Put("k", []byte("v2"))
	got, err := tr.Get("k")
	if err != nil || string(got) != "v2" {
		t.Fatalf("stale read after overwrite: %q, %v", got, err)
	}
}

func TestTieredConcurrent(t *testing.T) {
	tr := NewTiered(NewMemory(), NewMemory(), 512)
	for i := range 20 {
		tr.Put(fmt.Sprintf("o%d", i), bytes.Repeat([]byte{byte(i)}, 64))
	}
	var wg sync.WaitGroup
	for w := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 200 {
				key := fmt.Sprintf("o%d", (w*7+i)%20)
				b, err := tr.Get(key)
				if err != nil || len(b) != 64 {
					t.Errorf("Get(%s) = %d bytes, %v", key, len(b), err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tr.FastBytes() > 512 {
		t.Errorf("capacity violated under concurrency: %d", tr.FastBytes())
	}
}

func TestThrottledLatency(t *testing.T) {
	tr := &Throttled{Base: NewMemory(), Latency: 20 * time.Millisecond}
	tr.Put("k", []byte("v"))
	start := time.Now()
	tr.Get("k")
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("Get took %v, want >= 20ms", d)
	}
}

func TestThrottledBandwidth(t *testing.T) {
	tr := &Throttled{Base: NewMemory(), BytesPerS: 1 << 20} // 1 MiB/s
	data := make([]byte, 64<<10)                            // 64 KiB → ~62.5ms
	start := time.Now()
	tr.Put("k", data)
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("Put took %v, want >= 50ms at 1MiB/s", d)
	}
}

// TestThrottledExtraLatency verifies the runtime slow-disk toggle: extra
// latency applies while set and disappears when cleared.
func TestThrottledExtraLatency(t *testing.T) {
	mem := NewMemory()
	if err := mem.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	th := &Throttled{Base: mem}

	start := time.Now()
	if _, err := th.Get("k"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("baseline get took %v, want fast", d)
	}

	const extra = 30 * time.Millisecond
	th.SetExtraLatency(extra)
	if got := th.ExtraLatency(); got != extra {
		t.Fatalf("ExtraLatency = %v, want %v", got, extra)
	}
	start = time.Now()
	if _, err := th.Get("k"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < extra {
		t.Fatalf("slow-disk window not applied: get took %v, want ≥ %v", d, extra)
	}

	th.SetExtraLatency(0)
	start = time.Now()
	if _, err := th.Get("k"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("extra latency persisted after clear: %v", d)
	}
}
