// Package objstore provides the object storage layer DIESEL servers keep
// data chunks in — the role Ceph/Lustre plays under the DIESEL server in
// Figure 2.
//
// Four implementations share one interface:
//
//   - Memory: map-backed, for tests and simulations.
//   - Disk: one object per file under a root directory, for real runs.
//   - Throttled: wraps another store with modeled latency and bandwidth, so
//     examples can show HDD-versus-SSD behaviour in real time.
//   - Tiered: a fast store (SSD) caching a slow store (HDD) with LRU
//     eviction — the DIESEL server-side cache of Figure 4.
package objstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNotFound is returned when an object does not exist.
var ErrNotFound = errors.New("objstore: object not found")

// Store is a flat object store keyed by string. Keys are chunk IDs (22
// printable characters) possibly namespaced by dataset, e.g.
// "imagenet/0G2xk…". List returns keys in ascending order, which for chunk
// IDs is write-time order — the property metadata recovery scans rely on.
type Store interface {
	// Put stores data under key, overwriting any existing object.
	Put(key string, data []byte) error
	// Get returns the full object.
	Get(key string) ([]byte, error)
	// GetRange returns n bytes starting at off. n < 0 means "to the end".
	GetRange(key string, off, n int64) ([]byte, error)
	// Delete removes the object. Deleting a missing key is not an error.
	Delete(key string) error
	// List returns all keys with the given prefix, sorted ascending.
	List(prefix string) ([]string, error)
	// Size returns the object's length in bytes.
	Size(key string) (int64, error)
}

// --- Memory ---

// Memory is an in-memory Store, safe for concurrent use.
type Memory struct {
	mu   sync.RWMutex
	data map[string][]byte

	// Counters for experiments: number of operations and bytes moved.
	Ops Counters
}

// Counters tallies store traffic; all fields are protected by the owning
// store's mutex and read via Snapshot.
type Counters struct {
	Puts, Gets, Deletes, Lists uint64
	BytesIn, BytesOut          uint64
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{data: make(map[string][]byte)}
}

// Put implements Store.
func (m *Memory) Put(key string, data []byte) error {
	cp := append([]byte(nil), data...)
	m.mu.Lock()
	m.data[key] = cp
	m.Ops.Puts++
	m.Ops.BytesIn += uint64(len(data))
	m.mu.Unlock()
	return nil
}

// Get implements Store.
func (m *Memory) Get(key string) ([]byte, error) {
	m.mu.Lock()
	b, ok := m.data[key]
	m.Ops.Gets++
	m.Ops.BytesOut += uint64(len(b))
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return append([]byte(nil), b...), nil
}

// GetRange implements Store.
func (m *Memory) GetRange(key string, off, n int64) ([]byte, error) {
	m.mu.Lock()
	b, ok := m.data[key]
	m.Ops.Gets++
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return sliceRange(b, off, n)
}

func sliceRange(b []byte, off, n int64) ([]byte, error) {
	start, end, err := clampRange(int64(len(b)), off, n)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b[start:end]...), nil
}

// clampRange validates off and clamps n against an object of the given
// size, returning the half-open byte range to read.
func clampRange(size, off, n int64) (start, end int64, err error) {
	if off < 0 || off > size {
		return 0, 0, fmt.Errorf("objstore: offset %d out of range [0,%d]", off, size)
	}
	end = size
	if n >= 0 && off+n < end {
		end = off + n
	}
	return off, end, nil
}

// GetPooled implements PooledReader: the object is copied into a pooled
// buffer under no lock (stored slices are immutable once inserted).
func (m *Memory) GetPooled(key string) ([]byte, func(), error) {
	m.mu.Lock()
	b, ok := m.data[key]
	m.Ops.Gets++
	m.Ops.BytesOut += uint64(len(b))
	m.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	rb := getReadBuf(len(b))
	copy(rb.b, b)
	return rb.b, rb.release, nil
}

// GetRangePooled implements PooledReader.
func (m *Memory) GetRangePooled(key string, off, n int64) ([]byte, func(), error) {
	m.mu.Lock()
	b, ok := m.data[key]
	m.Ops.Gets++
	m.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	start, end, err := clampRange(int64(len(b)), off, n)
	if err != nil {
		return nil, nil, err
	}
	rb := getReadBuf(int(end - start))
	copy(rb.b, b[start:end])
	return rb.b, rb.release, nil
}

// Delete implements Store.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	delete(m.data, key)
	m.Ops.Deletes++
	m.mu.Unlock()
	return nil
}

// List implements Store.
func (m *Memory) List(prefix string) ([]string, error) {
	m.mu.Lock()
	out := make([]string, 0, len(m.data))
	for k := range m.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	m.Ops.Lists++
	m.mu.Unlock()
	sort.Strings(out)
	return out, nil
}

// Size implements Store.
func (m *Memory) Size(key string) (int64, error) {
	m.mu.RLock()
	b, ok := m.data[key]
	m.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return int64(len(b)), nil
}

// Snapshot returns a copy of the traffic counters.
func (m *Memory) Snapshot() Counters {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.Ops
}

// Len returns the number of stored objects.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// --- Disk ---

// Disk stores each object as one file under a root directory. Key path
// separators become directories. Writes are atomic (temp file + rename) so
// a crash never leaves a torn object visible.
type Disk struct {
	root string
	mu   sync.Mutex // guards temp-name counter only; file ops are parallel
	tmpN int
}

// NewDisk creates (if needed) and uses root as the storage directory.
func NewDisk(root string) (*Disk, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("objstore: create root: %w", err)
	}
	return &Disk{root: root}, nil
}

func (d *Disk) path(key string) (string, error) {
	clean := filepath.Clean(key)
	if clean == "." || clean == ".." || strings.HasPrefix(clean, "../") || filepath.IsAbs(clean) {
		return "", fmt.Errorf("objstore: invalid key %q", key)
	}
	return filepath.Join(d.root, clean), nil
}

// Put implements Store.
func (d *Disk) Put(key string, data []byte) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	d.mu.Lock()
	d.tmpN++
	tmp := fmt.Sprintf("%s.tmp%d", p, d.tmpN)
	d.mu.Unlock()
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, p)
}

// Get implements Store.
func (d *Disk) Get(key string) ([]byte, error) {
	p, err := d.path(key)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return b, err
}

// openRange opens key and clamps [off, off+n) against the file size.
// The caller closes f.
func (d *Disk) openRange(key string, off, n int64) (f *os.File, start, end int64, err error) {
	p, err := d.path(key)
	if err != nil {
		return nil, 0, 0, err
	}
	f, err = os.Open(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err != nil {
		return nil, 0, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	start, end, err = clampRange(st.Size(), off, n)
	if err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	return f, start, end, nil
}

// GetRange implements Store. The read lands in a pooled buffer and is
// copied out exactly-sized for the caller, so the transient read scratch
// never hits the garbage collector; hot paths that can honour a release
// protocol skip the copy entirely via GetRangePooled.
func (d *Disk) GetRange(key string, off, n int64) ([]byte, error) {
	b, release, err := d.GetRangePooled(key, off, n)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), b...)
	release()
	return out, nil
}

// GetPooled implements PooledReader.
func (d *Disk) GetPooled(key string) ([]byte, func(), error) {
	return d.GetRangePooled(key, 0, -1)
}

// GetRangePooled implements PooledReader.
func (d *Disk) GetRangePooled(key string, off, n int64) ([]byte, func(), error) {
	f, start, end, err := d.openRange(key, off, n)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	rb := getReadBuf(int(end - start))
	if _, err := f.ReadAt(rb.b, start); err != nil && end > start {
		rb.release()
		return nil, nil, err
	}
	return rb.b, rb.release, nil
}

// Delete implements Store.
func (d *Disk) Delete(key string) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// List implements Store.
func (d *Disk) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(d.root, func(p string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		if strings.Contains(de.Name(), ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			out = append(out, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Size implements Store.
func (d *Disk) Size(key string) (int64, error) {
	p, err := d.path(key)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(p)
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// --- Throttled ---

// Throttled wraps a Store with a per-operation latency and a byte
// bandwidth, imposed with real sleeps. It turns a Memory store into an
// "HDD" or "SSD" for runnable examples; the discrete-event simulator, not
// this type, is used for the paper's performance figures.
type Throttled struct {
	Base      Store
	Latency   time.Duration // seek/request setup cost per operation
	BytesPerS float64       // sustained transfer bandwidth; 0 = unlimited

	// extra is additional per-operation latency togglable at runtime
	// (nanoseconds, atomic). Fault schedules use it to open and close
	// slow-disk windows mid-run without reconstructing the store stack.
	extra atomic.Int64

	// Straggler injection: every slowEveryN-th operation takes slowExtra
	// additional latency, modeling the occasional 10x-slow disk read that
	// tail-latency work hedges against. Both togglable at runtime.
	slowEveryN atomic.Int64
	slowExtra  atomic.Int64
	opCount    atomic.Int64
}

// SetExtraLatency adds d on top of Latency for every subsequent
// operation; 0 restores the baseline. Safe to call while reads are in
// flight — in-flight operations keep the value they already sampled.
func (t *Throttled) SetExtraLatency(d time.Duration) { t.extra.Store(int64(d)) }

// ExtraLatency returns the current runtime-added per-operation latency.
func (t *Throttled) ExtraLatency() time.Duration { return time.Duration(t.extra.Load()) }

// SetSlowEvery makes every n-th operation (deterministically, by a global
// operation counter) take extra additional latency — the 1-in-n straggler
// a hedged reader must hide. n <= 0 disables injection. Safe to toggle
// while reads are in flight.
func (t *Throttled) SetSlowEvery(n int, extra time.Duration) {
	if n <= 0 {
		t.slowEveryN.Store(0)
		t.slowExtra.Store(0)
		return
	}
	t.slowExtra.Store(int64(extra))
	t.slowEveryN.Store(int64(n))
}

func (t *Throttled) wait(bytes int) {
	d := t.Latency + time.Duration(t.extra.Load())
	if n := t.slowEveryN.Load(); n > 0 && t.opCount.Add(1)%n == 0 {
		d += time.Duration(t.slowExtra.Load())
	}
	if t.BytesPerS > 0 {
		d += time.Duration(float64(bytes) / t.BytesPerS * float64(time.Second))
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Put implements Store.
func (t *Throttled) Put(key string, data []byte) error {
	t.wait(len(data))
	return t.Base.Put(key, data)
}

// Get implements Store.
func (t *Throttled) Get(key string) ([]byte, error) {
	b, err := t.Base.Get(key)
	t.wait(len(b))
	return b, err
}

// GetRange implements Store.
func (t *Throttled) GetRange(key string, off, n int64) ([]byte, error) {
	b, err := t.Base.GetRange(key, off, n)
	t.wait(len(b))
	return b, err
}

// GetPooled implements PooledReader, delegating to the base store's
// pooled path (or its plain Get when it has none) under the same modeled
// latency as Get.
func (t *Throttled) GetPooled(key string) ([]byte, func(), error) {
	b, release, err := GetPooled(t.Base, key)
	t.wait(len(b))
	return b, release, err
}

// GetRangePooled implements PooledReader.
func (t *Throttled) GetRangePooled(key string, off, n int64) ([]byte, func(), error) {
	b, release, err := GetRangePooled(t.Base, key, off, n)
	t.wait(len(b))
	return b, release, err
}

// Delete implements Store.
func (t *Throttled) Delete(key string) error {
	t.wait(0)
	return t.Base.Delete(key)
}

// List implements Store.
func (t *Throttled) List(prefix string) ([]string, error) {
	t.wait(0)
	return t.Base.List(prefix)
}

// Size implements Store.
func (t *Throttled) Size(key string) (int64, error) {
	t.wait(0)
	return t.Base.Size(key)
}
