package objstore

import (
	"strings"
	"sync/atomic"

	"diesel/internal/spill"
)

// The server-side spill tier: a third level under the Tiered store's
// fast/slow pair. When the fast tier (SSD cache) evicts an object under
// capacity pressure, its bytes demote to an append-friendly spill log on
// local disk instead of vanishing; reads that miss the fast tier check
// the spill log before paying the slow tier's latency, and a restarted
// diesel-server rewarms the log from its crash-safe manifest — the same
// machinery (internal/spill) the dcache masters use, reused one level
// down the storage hierarchy.
type tieredSpill struct {
	log       *spill.Log
	hits      atomic.Uint64
	demotions atomic.Uint64
	rewarmed  spill.Recovered
}

// EnableSpill opens the spill tier under the fast tier in dir, bounded
// to capacityBytes on disk (0 = unlimited), replaying any manifest a
// previous server process left there. Call once, at deploy time.
func (t *Tiered) EnableSpill(dir string, capacityBytes int64) (spill.Recovered, error) {
	log, rec, err := spill.Open(spill.Config{Dir: dir, CapacityBytes: capacityBytes})
	if err != nil {
		return spill.Recovered{}, err
	}
	st := &tieredSpill{log: log, rewarmed: rec}
	if !t.spill.CompareAndSwap(nil, st) {
		log.Close()
		return spill.Recovered{}, errSpillEnabled
	}
	return rec, nil
}

// TieredSpillStats snapshots the server-side spill tier.
type TieredSpillStats struct {
	Enabled       bool   `json:"enabled"`
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
	DiskBytes     int64  `json:"disk_bytes"`
	Segments      int    `json:"segments"`
	Hits          uint64 `json:"hits"`
	Demotions     uint64 `json:"demotions"`
	Dropped       uint64 `json:"dropped"`
	RewarmEntries int    `json:"rewarm_entries"`
	RewarmBytes   int64  `json:"rewarm_bytes"`
}

// SpillStats snapshots the spill tier (zero value when disabled).
func (t *Tiered) SpillStats() TieredSpillStats {
	st := t.spill.Load()
	if st == nil {
		return TieredSpillStats{}
	}
	ls := st.log.Stats()
	return TieredSpillStats{
		Enabled:       true,
		Entries:       ls.Entries,
		Bytes:         ls.LiveBytes,
		DiskBytes:     ls.DiskBytes,
		Segments:      ls.Segments,
		Hits:          st.hits.Load(),
		Demotions:     st.demotions.Load(),
		Dropped:       ls.DroppedEntries,
		RewarmEntries: st.rewarmed.Entries,
		RewarmBytes:   st.rewarmed.Bytes,
	}
}

// Close closes the spill log (if any), leaving its on-disk state for the
// next incarnation to rewarm from.
func (t *Tiered) Close() error {
	if st := t.spill.Swap(nil); st != nil {
		return st.log.Close()
	}
	return nil
}

// TierBytes is one dataset's residency across the fast and spill tiers.
type TierBytes struct {
	FastBytes  int64 `json:"fast_bytes"`
	SpillBytes int64 `json:"spill_bytes"`
}

// PerDatasetBytes folds resident bytes by the dataset prefix of each
// object key (server.ObjectKey shape: "dataset/chunkID") — the
// per-dataset view the /debug/cache handler serves.
func (t *Tiered) PerDatasetBytes() map[string]TierBytes {
	out := make(map[string]TierBytes)
	t.mu.Lock()
	for el := t.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*tieredEntry)
		ds, _, _ := strings.Cut(e.key, "/")
		tb := out[ds]
		tb.FastBytes += e.size
		out[ds] = tb
	}
	t.mu.Unlock()
	if st := t.spill.Load(); st != nil {
		st.log.Each(func(key string, size int64) {
			ds, _, _ := strings.Cut(key, "/")
			tb := out[ds]
			tb.SpillBytes += size
			out[ds] = tb
		})
	}
	return out
}

// spillGet serves a whole object from the spill tier, checksum-verified.
func (t *Tiered) spillGet(key string) ([]byte, bool) {
	st := t.spill.Load()
	if st == nil {
		return nil, false
	}
	b, err := st.log.Get(key)
	if err != nil {
		return nil, false
	}
	st.hits.Add(1)
	return b, true
}

// spillGetRange serves a byte range of a spilled object by pread.
func (t *Tiered) spillGetRange(key string, off, n int64) ([]byte, bool) {
	st := t.spill.Load()
	if st == nil {
		return nil, false
	}
	size, ok := st.log.Size(key)
	if !ok {
		return nil, false
	}
	start, end, err := clampRange(size, off, n)
	if err != nil {
		return nil, false
	}
	b, _, err := st.log.ReadAt(key, start, end-start)
	if err != nil {
		return nil, false
	}
	st.hits.Add(1)
	return b, true
}

// spillDemote pushes a fast-tier eviction victim down to the spill log.
// Objects are immutable between Put/Delete (both of which spillRemove),
// so a key already spilled costs no disk write.
func (t *Tiered) spillDemote(key string, data []byte) {
	st := t.spill.Load()
	if st == nil {
		return
	}
	if _, err := st.log.Add(key, data); err == nil {
		st.demotions.Add(1)
	}
}

// spillRemove invalidates a spilled object — persisted, so an overwrite
// or delete is never resurrected by a later rewarm.
func (t *Tiered) spillRemove(key string) {
	if st := t.spill.Load(); st != nil {
		st.log.Remove(key)
	}
}
