package objstore

import "diesel/internal/obs"

// RegisterMetrics registers scrape-time views of the tiered store's
// fast-tier (SSD cache) behaviour — the server-side cache of Figure 4 and
// the hit-rate axis of the paper's Figures 9–12.
func (t *Tiered) RegisterMetrics(reg *obs.Registry) {
	reg.FuncCounter("diesel_objstore_fast_hits_total",
		"Reads answered by the fast tier (SSD cache).",
		func() float64 { return float64(t.HitCount()) })
	reg.FuncCounter("diesel_objstore_fast_misses_total",
		"Reads that fell through to the slow tier (HDD).",
		func() float64 { return float64(t.MissCount()) })
	reg.Func("diesel_objstore_fast_bytes",
		"Bytes currently resident in the fast tier.",
		func() float64 { return float64(t.FastBytes()) })
	reg.FuncCounter("diesel_objstore_spill_hits_total",
		"Reads answered by the server-side spill tier before reaching the slow tier.",
		func() float64 { return float64(t.SpillStats().Hits) })
	reg.FuncCounter("diesel_objstore_spill_demotions_total",
		"Fast-tier eviction victims demoted to the server-side spill tier.",
		func() float64 { return float64(t.SpillStats().Demotions) })
	reg.Func("diesel_objstore_spill_bytes",
		"Bytes currently resident in the server-side spill tier.",
		func() float64 { return float64(t.SpillStats().Bytes) })
	reg.FuncCounter("diesel_objstore_spill_rewarmed_total",
		"Objects rewarmed from the spill manifest when the server restarted.",
		func() float64 { return float64(t.SpillStats().RewarmEntries) })
}
