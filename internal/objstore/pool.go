package objstore

import "sync"

// The read-buffer pool behind the PooledReader fast path. Reads on the
// server's hot path (chunk merges, single-file range reads) are
// transient: the bytes are copied into an RPC response or sliced apart
// and then dropped, so the multi-megabyte read buffer can be recycled
// instead of churning the GC. The pool stores a wrapper struct, not a
// slice, so Get/Put never allocate a boxed slice header.
const maxPooledBuf = 8 << 20

type readBuf struct{ b []byte }

var readBufPool = sync.Pool{New: func() any { return new(readBuf) }}

// getReadBuf returns a pooled buffer with at least n usable bytes,
// growing geometrically so one large read does not permanently pin an
// oddly-sized buffer.
func getReadBuf(n int) *readBuf {
	rb := readBufPool.Get().(*readBuf)
	if cap(rb.b) < n {
		size := cap(rb.b)
		if size < 4096 {
			size = 4096
		}
		for size < n {
			size *= 2
		}
		rb.b = make([]byte, size)
	}
	rb.b = rb.b[:n]
	return rb
}

func (rb *readBuf) release() {
	if cap(rb.b) > maxPooledBuf {
		rb.b = nil // let one outsized read go to the GC, keep the pool small
	}
	readBufPool.Put(rb)
}

// PooledReader is an optional Store extension for allocation-free reads:
// the returned bytes live in a pooled buffer and the caller MUST call
// release exactly once when done — after which the slice must not be
// touched. Callers that need the data past release must copy it first.
type PooledReader interface {
	// GetPooled is Get into a pooled buffer.
	GetPooled(key string) (data []byte, release func(), err error)
	// GetRangePooled is GetRange into a pooled buffer.
	GetRangePooled(key string, off, n int64) (data []byte, release func(), err error)
}

func noopRelease() {}

// GetPooled reads a whole object through the store's pooled path when it
// has one, falling back to a plain owned Get (with a no-op release)
// otherwise — so callers can adopt the release protocol without caring
// which Store implementation they were configured with.
func GetPooled(s Store, key string) ([]byte, func(), error) {
	if pr, ok := s.(PooledReader); ok {
		return pr.GetPooled(key)
	}
	b, err := s.Get(key)
	return b, noopRelease, err
}

// GetRangePooled is the range-read analogue of GetPooled.
func GetRangePooled(s Store, key string, off, n int64) ([]byte, func(), error) {
	if pr, ok := s.(PooledReader); ok {
		return pr.GetRangePooled(key, off, n)
	}
	b, err := s.GetRange(key, off, n)
	return b, noopRelease, err
}
