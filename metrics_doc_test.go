package diesel

// Metrics-reference doc test: DESIGN.md carries a generated table of
// every diesel_* metric family the registry knows. This test boots a
// stack that touches every subsystem (so lazily-registered families
// exist), then fails if any registered family is missing from the table
// — new metrics must land with their documentation. Regenerate the table
// after adding a family:
//
//	UPDATE_METRICS_DOC=1 go test -run TestMetricsReferenceDoc .

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"diesel/internal/loadgen"
	"diesel/internal/obs"
	"diesel/internal/server"
	"diesel/internal/slo"
)

const (
	metricsDocFile  = "DESIGN.md"
	metricsDocBegin = "<!-- metrics-reference:begin -->"
	metricsDocEnd   = "<!-- metrics-reference:end -->"
)

// registerAllMetricFamilies drives every subsystem far enough that its
// metric families exist in obs.Default(): a two-job embedded stack with
// an SSD tier, epoch readers with the tail controls on, tenant quotas,
// the SLO engine + watchdog, and the scrape-time registration hooks the
// binaries call.
func registerAllMetricFamilies(t *testing.T) {
	t.Helper()
	st, err := loadgen.StartStack(loadgen.StackConfig{
		KVNodes: 1, Servers: 1,
		Files: 32, FileSizeB: 256,
		Clients:       2,
		SSDCacheBytes: 1 << 20,
		TaskNodes:     1, ClientsPerNode: 1, Jobs: 2,
		EpochReaders: 1, EpochHedge: true, EpochReorder: 2,
		EpochDeadline: time.Second,
	})
	if err != nil {
		t.Fatalf("StartStack: %v", err)
	}
	defer st.Close()

	reg := obs.Default()
	obs.RegisterRuntime(reg)
	st.Dep.Server().RegisterMetrics(reg)
	for _, rpc := range st.Dep.Servers() {
		rpc.RegisterMetrics(reg)
	}
	for _, kv := range st.Dep.KVServers() {
		kv.RegisterMetrics(reg)
	}
	// The tiered store's families (fast tier + spill tier) register inside
	// core.Deploy — no hand-wiring here.
	st.Dep.Server().SetTenantQuota("doc-tenant", server.TenantQuota{QPS: 1000})

	// The slo package's families: the engine's breach counter and the
	// watchdog's bundle/spool telemetry.
	eng := slo.NewEngine(slo.EngineConfig{
		Registry: reg,
		Objectives: []slo.Objective{
			slo.ReadLatencyObjective(reg, 50*time.Millisecond, 0.01),
			slo.EpochStallObjective(reg, 100*time.Millisecond, 0.01),
			slo.SharedHitRateObjective(reg, 0.5),
			slo.QuotaRejectionObjective(reg, 0.01, "doc-tenant"),
		},
	})
	eng.Evaluate(time.Now())
	wd, err := slo.NewWatchdog(slo.WatchdogConfig{Dir: t.TempDir(), Registry: reg, CPUProfile: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer wd.Close()

	ops, err := st.Ops("get=1,direct=1,batch=1,chunk=1,view=1,stat=1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st.RunEmbedded(context.Background(), loadgen.Config{
		Rate:        400,
		Duration:    400 * time.Millisecond,
		Concurrency: 8,
		Seed:        3,
		Ops:         ops,
	})
	if err != nil {
		t.Fatalf("RunEmbedded: %v", err)
	}
	if rep.Ops == 0 {
		t.Fatal("exercise run performed no operations")
	}
}

// renderMetricsTable renders the families as the DESIGN.md table body.
func renderMetricsTable(fams []obs.FamilyInfo) string {
	var b strings.Builder
	b.WriteString("| Family | Type | Help |\n|---|---|---|\n")
	for _, f := range fams {
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", f.Name, f.Type, f.Help)
	}
	return b.String()
}

// docTableFamilies extracts the family names of the generated table.
func docTableFamilies(table string) map[string]bool {
	out := map[string]bool{}
	for _, line := range strings.Split(table, "\n") {
		rest, ok := strings.CutPrefix(line, "| `")
		if !ok {
			continue
		}
		name, _, ok := strings.Cut(rest, "`")
		if ok {
			out[name] = true
		}
	}
	return out
}

func TestMetricsReferenceDoc(t *testing.T) {
	registerAllMetricFamilies(t)
	fams := obs.Default().Families()
	if len(fams) < 40 {
		t.Fatalf("only %d families registered — the exercise stack no longer touches every subsystem", len(fams))
	}

	doc, err := os.ReadFile(metricsDocFile)
	if err != nil {
		t.Fatal(err)
	}
	begin := strings.Index(string(doc), metricsDocBegin)
	end := strings.Index(string(doc), metricsDocEnd)
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("%s is missing the %s / %s markers", metricsDocFile, metricsDocBegin, metricsDocEnd)
	}

	if os.Getenv("UPDATE_METRICS_DOC") != "" {
		updated := string(doc[:begin]) + metricsDocBegin + "\n" +
			renderMetricsTable(fams) + string(doc[end:])
		if err := os.WriteFile(metricsDocFile, []byte(updated), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s metrics reference (%d families)", metricsDocFile, len(fams))
		return
	}

	documented := docTableFamilies(string(doc[begin:end]))
	var missing []string
	for _, f := range fams {
		if !documented[f.Name] {
			missing = append(missing, f.Name)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("metric families registered but missing from the %s metrics reference: %v\n"+
			"regenerate with: UPDATE_METRICS_DOC=1 go test -run TestMetricsReferenceDoc .",
			metricsDocFile, missing)
	}
}
