package diesel

// Scale test: the paper's evaluation uses datasets of 1.28 M – 9 M files
// (§6.1 "hundreds of millions of files with random contents"). This test
// runs the full stack at the largest size that stays fast on one core —
// 60 k files through real chunking, ingest, snapshot, shuffle and
// sampled verified reads — to catch anything that only breaks past toy
// sizes (quadratic paths, fixed-size assumptions, map pressure).

import (
	"testing"
	"time"

	"diesel/internal/core"
	"diesel/internal/shuffle"
	"diesel/internal/trace"
)

func TestScaleSixtyThousandFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	dep, err := core.Deploy(core.Config{KVNodes: 2, DieselServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	spec := trace.CIFARLike(1) // 60k files, ~3 KB each, 10 classes
	start := time.Now()
	if err := trace.Write(spec, func(w int) (trace.Putter, error) {
		return dep.NewClient(spec.Name, 200+w)
	}, 4); err != nil {
		t.Fatal(err)
	}
	writeTime := time.Since(start)

	cl, err := dep.NewClient(spec.Name, 300)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rec, err := cl.DatasetRecord()
	if err != nil {
		t.Fatal(err)
	}
	if rec.FileCount != uint64(spec.NumFiles) {
		t.Fatalf("FileCount = %d, want %d", rec.FileCount, spec.NumFiles)
	}
	if rec.ChunkCount < 40 { // ~184 MB / 4 MB
		t.Errorf("ChunkCount = %d; chunking suspicious", rec.ChunkCount)
	}

	start = time.Now()
	snap, err := cl.DownloadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapTime := time.Since(start)
	if snap.NumFiles() != spec.NumFiles {
		t.Fatalf("snapshot has %d files", snap.NumFiles())
	}

	// Chunk-wise shuffle over the full dataset: permutation + group bound.
	start = time.Now()
	plan := shuffle.ChunkWisePlan(snap, 1, 30)
	shuffleTime := time.Since(start)
	if plan.NumFiles() != spec.NumFiles {
		t.Fatalf("plan covers %d files", plan.NumFiles())
	}
	if plan.WorkingSetChunks() > 30 {
		t.Errorf("working set %d > group size", plan.WorkingSetChunks())
	}

	// Sampled verified reads across the whole index range, batched.
	var order []int
	for i := 0; i < spec.NumFiles; i += 997 {
		order = append(order, i)
	}
	start = time.Now()
	if err := trace.ReadOrder(spec, func(int) (trace.Getter, error) { return cl, nil }, 4, order); err != nil {
		t.Fatal(err)
	}
	readTime := time.Since(start)

	t.Logf("60k files: write=%v snapshot=%v (%d chunks) shuffle=%v sampled-reads(%d)=%v",
		writeTime, snapTime, rec.ChunkCount, shuffleTime, len(order), readTime)
	if writeTime > 2*time.Minute || snapTime > 30*time.Second {
		t.Errorf("scale regression: write=%v snapshot=%v", writeTime, snapTime)
	}
}
