// Package diesel is a from-scratch Go reproduction of "DIESEL: A
// Dataset-Based Distributed Storage and Caching System for Large-Scale
// Deep Learning Training" (Wang et al., ICPP 2020).
//
// The implementation lives under internal/: the chunk format, the
// metadata layer with snapshots, the DIESEL server and libDIESEL client,
// the task-grained distributed cache, the chunk-wise shuffle, a FUSE-like
// POSIX layer, the Lustre/Memcached/Redis/etcd substrates the paper
// builds on or compares against, and a discrete-event cluster simulator
// that regenerates the paper's performance figures. See README.md for the
// tour and DESIGN.md for the system inventory and per-experiment index.
//
// This root package holds only the repository-level benchmark suite
// (bench_test.go), which exercises the real implementations.
package diesel
