module diesel

go 1.24
