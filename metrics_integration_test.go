package diesel

// Observability integration test: boot a real stack, drive a put/get
// round trip over loopback TCP, then scrape the -metrics endpoint the
// way Prometheus would and check that the exposition is parseable and
// that every metric kind — counter, gauge, histogram — reports nonzero
// traffic from the round trip.

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"diesel/internal/core"
	"diesel/internal/obs"
)

func TestMetricsEndpointAfterRoundTrip(t *testing.T) {
	dep, err := core.Deploy(core.Config{KVNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	dep.Server().RegisterMetrics(obs.Default())

	addr, stop, err := obs.Serve("127.0.0.1:0", obs.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// The round trip whose traffic the scrape must reflect.
	cl, err := dep.NewClient("metrics-it", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	payload := []byte("observability payload")
	if err := cl.Put("a/b.bin", payload); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get("a/b.bin")
	if err != nil || string(got) != string(payload) {
		t.Fatalf("round trip: %q, %v", got, err)
	}

	hc := &http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	scrape, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	// At least one nonzero sample of each kind, from the round trip.
	var counter, gauge string
	for _, s := range scrape.Samples {
		if s.Value <= 0 {
			continue
		}
		switch scrape.Types[s.Name] {
		case "counter":
			if counter == "" {
				counter = s.Name
			}
		case "gauge":
			if gauge == "" {
				gauge = s.Name
			}
		}
	}
	if counter == "" {
		t.Error("no nonzero counter in scrape")
	}
	if gauge == "" {
		t.Error("no nonzero gauge in scrape")
	}
	var hist string
	for _, h := range scrape.Histograms {
		if h.Count > 0 && len(h.Buckets) > 0 {
			hist = h.Name
			break
		}
	}
	if hist == "" {
		t.Error("no histogram with observations in scrape")
	}
	t.Logf("nonzero counter=%s gauge=%s histogram=%s", counter, gauge, hist)

	// Specific families the round trip must have touched.
	want := map[string]bool{
		"diesel_wire_frames_total": false, // client↔server RPC framing
		"diesel_kv_ops_total":      false, // server→KV metadata traffic
		"diesel_server_kv_keys":    false, // scrape-time DBSize gauge
	}
	for _, s := range scrape.Samples {
		if _, ok := want[s.Name]; ok && s.Value > 0 {
			want[s.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("expected nonzero %s after round trip", name)
		}
	}

	// The sibling endpoints on the same mux.
	for _, path := range []string{"/healthz", "/debug/pprof/", "/debug/vars"} {
		r, err := hc.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", path, r.Status)
		}
	}
}
