// fault-recovery: exercises DIESEL's failure paths (§4.1.2 and §4.2).
//
//  1. Scenario (a): some recently written metadata is lost from the KV
//     database; the server recovers it by scanning only the chunks whose
//     time-ordered IDs fall after a timestamp.
//  2. Scenario (b): the entire in-memory metadata database is wiped
//     (power failure); a full scan of the self-contained chunks rebuilds
//     every key-value pair.
//  3. Task-grained cache failure containment: a cache master dies; reads
//     keep succeeding via server fallback, and a restarted cache recovers
//     at chunk granularity.
//
// Run with:
//
//	go run ./examples/fault-recovery
package main

import (
	"fmt"
	"log"
	"time"

	"diesel/internal/core"
	"diesel/internal/dcache"
	"diesel/internal/meta"
	"diesel/internal/trace"
)

func main() {
	dep, err := core.Deploy(core.Config{KVNodes: 2, DieselServers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	spec := trace.Spec{Name: "ds", NumFiles: 400, Classes: 8, MeanFileSize: 4 << 10, Seed: 3}
	if err := trace.Write(spec, func(w int) (trace.Putter, error) {
		return dep.NewClient("ds", w)
	}, 2); err != nil {
		log.Fatal(err)
	}
	srv := dep.Server()
	kvBefore, _ := srv.KVSize()
	fmt.Printf("dataset written: %d files, %d metadata keys\n", spec.NumFiles, kvBefore)

	// --- Scenario (a): partial metadata loss ---
	cutoff := uint32(time.Now().Unix()) + 1
	time.Sleep(1100 * time.Millisecond) // ensure the next chunk's ID timestamp >= cutoff
	late, err := dep.NewClient("ds", 50)
	if err != nil {
		log.Fatal(err)
	}
	late.Put("late/extra.bin", []byte("written after the cutoff"))
	late.Flush()
	late.Close()

	// Lose the new file's record (a KV node lost its recent writes).
	if _, err := dep.KVCluster().Del(meta.FileKey("ds", "late/extra.bin")); err != nil {
		log.Fatal(err)
	}
	r, err := dep.NewClient("ds", 51)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Get("late/extra.bin"); err == nil {
		log.Fatal("lost record still served?")
	}
	st, err := srv.RecoverMetadata("ds", cutoff)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario (a): scanned %d recent chunks (skipped %d older), rewrote %d pairs\n",
		st.ChunksScanned, st.ChunksSkipped, st.PairsWritten)
	if b, err := r.Get("late/extra.bin"); err != nil || string(b) != "written after the cutoff" {
		log.Fatalf("recovery (a) failed: %v", err)
	}
	fmt.Println("scenario (a): lost record recovered ✓")

	// --- Scenario (b): total metadata loss ---
	for _, kv := range dep.KVServers() {
		kv.Wipe()
	}
	if n, _ := srv.KVSize(); n != 0 {
		log.Fatal("wipe failed")
	}
	start := time.Now()
	st, err = srv.RecoverMetadata("ds", 0)
	if err != nil {
		log.Fatal(err)
	}
	kvAfter, _ := srv.KVSize()
	fmt.Printf("scenario (b): full scan of %d chunks rebuilt %d keys in %v (before: %d)\n",
		st.ChunksScanned, kvAfter, time.Since(start), kvBefore)
	order := []int{0, 99, 199, 299, 399}
	if err := trace.ReadOrder(spec, func(int) (trace.Getter, error) { return r, nil }, 1, order); err != nil {
		log.Fatalf("post-recovery verification failed: %v", err)
	}
	fmt.Println("scenario (b): all sampled files verified after full rebuild ✓")

	// --- Cache failure containment ---
	task, err := dep.StartTask(core.TaskConfig{
		Dataset: "ds", Nodes: 2, ClientsPerNode: 2, Policy: dcache.Oneshot,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer task.Close()
	for _, p := range task.Peers {
		if p.IsMaster() {
			p.LoadOwned()
		}
	}
	// Kill node B's master (the peer with the highest master rank).
	var victim *dcache.Peer
	for _, p := range task.Peers {
		if p.IsMaster() {
			victim = p
		}
	}
	victim.Close()
	fmt.Println("killed one cache master")

	reader := task.Clients[1] // a non-master on the surviving node
	ok := 0
	for i := 0; i < spec.NumFiles; i += 10 {
		b, err := reader.Get(spec.FileName(i))
		if err != nil {
			log.Fatalf("read failed after master death: %v", err)
		}
		if err := spec.Verify(i, b); err != nil {
			log.Fatal(err)
		}
		ok++
	}
	var fallbacks, deaths uint64
	deadNow := 0
	for _, p := range task.Peers {
		fallbacks += p.Stats.ServerFallback.Load()
		deaths += p.Stats.MasterDeaths.Load()
		deadNow += p.DeadMasters()
	}
	fmt.Printf("containment: %d reads succeeded after master death (%d via server fallback) ✓\n", ok, fallbacks)
	fmt.Printf("breaker: %d master-death events; %d remote masters currently marked dead — their chunks route straight to server fallback ✓\n",
		deaths, deadNow)

	// Chunk-granular cache recovery: drop and reload the survivor.
	var survivor *dcache.Peer
	for _, p := range task.Peers {
		if p.IsMaster() && p != victim {
			survivor = p
		}
	}
	survivor.DropAll()
	start = time.Now()
	if err := survivor.LoadOwned(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache recovery: reloaded %d chunks (%d bytes) in %v — chunk reads, not %d file reads ✓\n",
		survivor.CachedChunks(), survivor.CachedBytes(), time.Since(start), spec.NumFiles)
}
