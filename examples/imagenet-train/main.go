// imagenet-train: an end-to-end DLT task over DIESEL, the workload the
// paper's introduction motivates.
//
// It writes an ImageNet-shaped synthetic dataset (scaled down to run on a
// laptop), stands up a 4-node training task whose 8 I/O workers share a
// task-grained distributed cache (one master client per node, Figure 7),
// and runs several training epochs: each epoch generates a chunk-wise
// shuffled file order (Figure 8) and streams every file through the
// cache, verifying contents. It reports per-epoch read throughput, cache
// hit composition, and the executor/cache statistics.
//
// Run with:
//
//	go run ./examples/imagenet-train
package main

import (
	"fmt"
	"log"
	"time"

	"diesel/internal/core"
	"diesel/internal/dcache"
	"diesel/internal/epoch"
	"diesel/internal/trace"
	"diesel/internal/train"
)

func main() {
	const (
		nodes          = 4
		clientsPerNode = 2
		epochs         = 3
		groupSize      = 4
	)
	spec := trace.Spec{
		Name: "imagenet", NumFiles: 1200, Classes: 40,
		MeanFileSize: 8 << 10, SizeSpread: 0.5, Seed: 77,
	}

	dep, err := core.Deploy(core.Config{KVNodes: 3, DieselServers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// Data preparation: 4 concurrent writers pack files into chunks.
	start := time.Now()
	err = trace.Write(spec, func(w int) (trace.Putter, error) {
		return dep.NewClient(spec.Name, 1000+w)
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared %d files (%.1f MB) in %v\n",
		spec.NumFiles, float64(spec.TotalBytes())/1e6, time.Since(start))

	// Start the DLT task: snapshot download + distributed-cache join.
	task, err := dep.StartTask(core.TaskConfig{
		Dataset: spec.Name,
		Nodes:   nodes, ClientsPerNode: clientsPerNode,
		Policy: dcache.Oneshot,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer task.Close()
	masters := 0
	for _, p := range task.Peers {
		if p.IsMaster() {
			masters++
		}
	}
	fmt.Printf("task started: %d clients on %d nodes, %d cache masters\n",
		len(task.Clients), nodes, masters)

	// Training epochs, the Figure 1 pattern: each epoch builds a chunk-wise
	// shuffle plan, and the pipelined epoch reader prefetches whole chunk
	// groups through the distributed cache while the "training loop" (here:
	// verification) consumes batches in plan order.
	cl := task.Clients[0]
	snap := cl.Snapshot()
	for ep := range epochs {
		plan, err := cl.ShufflePlan(int64(ep), groupSize)
		if err != nil {
			log.Fatal(err)
		}
		order := plan.Paths(snap)
		idx := make([]int, len(order))
		for i, path := range order {
			// Recover the trace index from the file name suffix.
			fmt.Sscanf(path[len(path)-11:], "%07d.bin", &idx[i])
		}

		epochStart := time.Now()
		reader := epoch.NewReader(plan, snap,
			epoch.NewCacheSource(task.Peers[0], snap, 8),
			epoch.WithWindow(2))
		loader := train.NewEpochLoader(reader, train.WithBatchSize(64))
		pos := 0
		for {
			b, ok, err := loader.Next()
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				break
			}
			for _, data := range b.Data {
				if err := spec.Verify(idx[pos], data); err != nil {
					log.Fatal(err)
				}
				pos++
			}
		}
		loader.Close()
		elapsed := time.Since(epochStart)
		fmt.Printf("epoch %d: %d files in %v (%.0f files/s, %.1f MB/s)\n",
			ep, len(order), elapsed,
			float64(len(order))/elapsed.Seconds(),
			float64(spec.TotalBytes())/1e6/elapsed.Seconds())
	}

	// Cache statistics: after the oneshot prefetch, epochs are all hits.
	var local, peer, loads, fallback uint64
	for _, p := range task.Peers {
		local += p.Stats.LocalHits.Load()
		peer += p.Stats.PeerReads.Load()
		loads += p.Stats.ChunkLoads.Load()
		fallback += p.Stats.ServerFallback.Load()
	}
	fmt.Printf("cache: %d local hits, %d peer reads, %d chunk loads, %d server fallbacks\n",
		local, peer, loads, fallback)
}
