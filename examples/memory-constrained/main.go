// memory-constrained: the §4.3 scenario — the dataset does not fit in
// the task-grained distributed cache, and the epoch order decides whether
// the cache works at all.
//
// A dataset of ~25 chunks is served through a cache capped at 3 chunks.
// The same epoch is read twice:
//
//   - in chunk-wise shuffled order (group size ≤ cache capacity): reads
//     stay within one group of chunks at a time, so each chunk is pulled
//     from the DIESEL server exactly once per epoch;
//   - in fully shuffled order: reads hop chunks at random and the tiny
//     cache thrashes, re-pulling chunks over and over.
//
// The backend chunk loads per epoch are the whole story: same files, same
// cache, same randomized-per-epoch training semantics — an order-of-
// magnitude difference in backend traffic.
//
// Two further phases show the two-level cache (RAM → local-SSD spill):
// the same thrashing full-shuffle order with a spill tier under the RAM
// budget stops re-pulling chunks from the server once the first epoch has
// demoted them, and a restarted task over the same spill directory
// rewarms from local disk and serves its first epoch without the server.
//
// Run with:
//
//	go run ./examples/memory-constrained
//
// CI runs it with -assert, which turns the two spill claims into exit
// codes: second-epoch spill hit rate ≥ -min-spill-hit-rate and the
// restarted task serving ≥ -min-local-frac of first-epoch reads locally.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"diesel/internal/client"
	"diesel/internal/core"
	"diesel/internal/dcache"
	"diesel/internal/epoch"
	"diesel/internal/shuffle"
	"diesel/internal/trace"
)

func main() {
	assert := flag.Bool("assert", false, "exit non-zero when a spill gate fails (CI mode)")
	minHitRate := flag.Float64("min-spill-hit-rate", 0.5,
		"minimum second-epoch spill hit rate under -assert")
	minLocalFrac := flag.Float64("min-local-frac", 0.9,
		"minimum fraction of restart first-epoch reads served locally under -assert")
	flag.Parse()
	dep, err := core.Deploy(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// ~25 chunks of 64 KiB.
	spec := trace.Spec{Name: "big", NumFiles: 1600, Classes: 16, MeanFileSize: 1 << 10, Seed: 9}
	if err := trace.Write(spec, func(w int) (trace.Putter, error) {
		// Small chunk target so the example has many chunks to shuffle.
		return client.Connect(client.Options{
			Servers: dep.ServerAddrs(), Dataset: spec.Name,
			Rank: 100 + w, ChunkTarget: 64 << 10,
		})
	}, 1); err != nil {
		log.Fatal(err)
	}

	// One node, one client, cache capped at ~3 chunks' payload.
	const capacity = 3*64*1024 + 4096
	task, err := dep.StartTask(core.TaskConfig{
		Dataset: spec.Name, Nodes: 1, ClientsPerNode: 1,
		Policy: dcache.OnDemand, CapacityBytes: capacity,
	})
	if err != nil {
		log.Fatal(err)
	}
	cl, peer := task.Clients[0], task.Peers[0]
	snap := cl.Snapshot()
	fmt.Printf("dataset: %d files in %d chunks (%.1f MB); cache capacity: %d chunks\n",
		snap.NumFiles(), len(snap.Chunks), float64(snap.TotalBytes())/1e6, 3)

	report := func(label string, before int64, start time.Time) {
		loads := peer.Stats.ChunkLoads.Load() - uint64(before)
		fmt.Printf("%-22s %5d backend chunk loads  (%.2fx dataset)  epoch took %v\n",
			label, loads, float64(loads)/float64(len(snap.Chunks)), time.Since(start))
	}

	// Chunk-wise epoch through the epoch reader. The window must be 0
	// here: the cache holds 3 chunks and each group spans 2, so prefetching
	// even one group ahead would evict the group being consumed — the
	// reader's knob exists precisely to match the window to cache headroom.
	{
		plan, err := cl.ShufflePlan(42, 2)
		if err != nil {
			log.Fatal(err)
		}
		peer.DropAll()
		before := peer.Stats.ChunkLoads.Load()
		start := time.Now()
		r := epoch.NewReader(plan, snap, epoch.NewCacheSource(peer, snap, 4),
			epoch.WithWindow(0))
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
		r.Close()
		if err := r.Err(); err != nil {
			log.Fatalf("chunk-wise: %v", err)
		}
		report("chunk-wise shuffle:", int64(before), start)
	}

	// Fully shuffled epoch: plain per-file reads in a chunk-hopping order.
	{
		order := shuffle.Dataset(snap, 42)
		peer.DropAll()
		before := peer.Stats.ChunkLoads.Load()
		start := time.Now()
		for _, path := range order {
			if _, err := cl.Get(path); err != nil {
				log.Fatalf("full shuffle: %v", err)
			}
		}
		report("full dataset shuffle:", int64(before), start)
	}
	task.Close()

	fmt.Println("\nsame files, same cache — only the order differs (§4.3's point).")

	// ---- Two-level cache: same thrashing order, spill tier under the RAM budget.

	spillDir, err := os.MkdirTemp("", "memory-constrained-spill-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(spillDir)

	failed := false
	gate := func(name string, got, want float64) {
		status := "ok"
		if got < want {
			status = "FAIL"
			failed = true
		}
		if *assert {
			fmt.Printf("gate %-28s %.3f (want >= %.3f)  %s\n", name+":", got, want, status)
		}
	}

	// Same RAM budget, worst-case order, spill enabled. Epoch 1 pulls every
	// chunk from the server once and demotes evictions to local disk; epoch
	// 2's RAM misses land in the spill tier instead of going back out.
	spilled, err := dep.StartTask(core.TaskConfig{
		Dataset: spec.Name, Nodes: 1, ClientsPerNode: 1,
		Policy: dcache.OnDemand, CapacityBytes: capacity,
		JobID: "mc-spill", SpillDir: spillDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	scl, speer := spilled.Clients[0], spilled.Peers[0]
	epochReads := func(cl *client.Client, p *dcache.Peer, seed int64) (loads uint64, dur time.Duration, reads int) {
		order := shuffle.Dataset(snap, seed)
		before := p.Stats.ChunkLoads.Load()
		start := time.Now()
		for _, path := range order {
			if _, err := cl.Get(path); err != nil {
				log.Fatalf("spill epoch: %v", err)
			}
		}
		return p.Stats.ChunkLoads.Load() - before, time.Since(start), len(order)
	}

	fmt.Println("\nwith a local-SSD spill tier under the same RAM budget:")
	loads1, dur1, _ := epochReads(scl, speer, 42)
	pre := speer.SpillStats()
	loads2, dur2, _ := epochReads(scl, speer, 43)
	post := speer.SpillStats()
	hits, misses := post.Hits-pre.Hits, post.Misses-pre.Misses
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	fmt.Printf("%-22s %5d backend chunk loads  epoch took %v\n", "spill epoch 1 (cold):", loads1, dur1)
	fmt.Printf("%-22s %5d backend chunk loads  epoch took %v  (spill hit rate %.0f%%)\n",
		"spill epoch 2 (warm):", loads2, dur2, 100*hitRate)
	gate("spill-hit-rate", hitRate, *minHitRate)

	// Warm restart: flush the RAM residents down, close the task, and
	// rejoin over the same spill directory. The manifest rewarms the cache
	// from local disk; the first epoch after restart should barely touch
	// the server at all.
	speer.DemoteAll()
	spilled.Close()
	restarted, err := dep.StartTask(core.TaskConfig{
		Dataset: spec.Name, Nodes: 1, ClientsPerNode: 1,
		Policy: dcache.OnDemand, CapacityBytes: capacity,
		JobID: "mc-warm", SpillDir: spillDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer restarted.Close()
	rcl, rpeer := restarted.Clients[0], restarted.Peers[0]
	chunks, bytes := rpeer.Rewarmed()
	fmt.Printf("\nrestarted over the same spill dir: rewarmed %d chunks (%.1f MB) from local disk\n",
		chunks, float64(bytes)/1e6)
	rloads, rdur, rreads := epochReads(rcl, rpeer, 44)
	localFrac := 1 - float64(rloads)/float64(rreads)
	fmt.Printf("%-22s %5d backend chunk loads  epoch took %v  (%.1f%% of reads served locally)\n",
		"restart epoch 1:", rloads, rdur, 100*localFrac)
	gate("restart-local-frac", localFrac, *minLocalFrac)

	fmt.Println("\nsame cache budget — the spill tier turns refetches into local preads (Fig. 11b/12).")
	if *assert && failed {
		fmt.Println("ASSERT FAILED")
		os.Exit(1)
	}
}
