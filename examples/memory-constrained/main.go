// memory-constrained: the §4.3 scenario — the dataset does not fit in
// the task-grained distributed cache, and the epoch order decides whether
// the cache works at all.
//
// A dataset of ~25 chunks is served through a cache capped at 3 chunks.
// The same epoch is read twice:
//
//   - in chunk-wise shuffled order (group size ≤ cache capacity): reads
//     stay within one group of chunks at a time, so each chunk is pulled
//     from the DIESEL server exactly once per epoch;
//   - in fully shuffled order: reads hop chunks at random and the tiny
//     cache thrashes, re-pulling chunks over and over.
//
// The backend chunk loads per epoch are the whole story: same files, same
// cache, same randomized-per-epoch training semantics — an order-of-
// magnitude difference in backend traffic.
//
// Run with:
//
//	go run ./examples/memory-constrained
package main

import (
	"fmt"
	"log"
	"time"

	"diesel/internal/client"
	"diesel/internal/core"
	"diesel/internal/dcache"
	"diesel/internal/epoch"
	"diesel/internal/shuffle"
	"diesel/internal/trace"
)

func main() {
	dep, err := core.Deploy(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// ~25 chunks of 64 KiB.
	spec := trace.Spec{Name: "big", NumFiles: 1600, Classes: 16, MeanFileSize: 1 << 10, Seed: 9}
	if err := trace.Write(spec, func(w int) (trace.Putter, error) {
		// Small chunk target so the example has many chunks to shuffle.
		return client.Connect(client.Options{
			Servers: dep.ServerAddrs(), Dataset: spec.Name,
			Rank: 100 + w, ChunkTarget: 64 << 10,
		})
	}, 1); err != nil {
		log.Fatal(err)
	}

	// One node, one client, cache capped at ~3 chunks' payload.
	const capacity = 3*64*1024 + 4096
	task, err := dep.StartTask(core.TaskConfig{
		Dataset: spec.Name, Nodes: 1, ClientsPerNode: 1,
		Policy: dcache.OnDemand, CapacityBytes: capacity,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer task.Close()
	cl, peer := task.Clients[0], task.Peers[0]
	snap := cl.Snapshot()
	fmt.Printf("dataset: %d files in %d chunks (%.1f MB); cache capacity: %d chunks\n",
		snap.NumFiles(), len(snap.Chunks), float64(snap.TotalBytes())/1e6, 3)

	report := func(label string, before int64, start time.Time) {
		loads := peer.Stats.ChunkLoads.Load() - uint64(before)
		fmt.Printf("%-22s %5d backend chunk loads  (%.2fx dataset)  epoch took %v\n",
			label, loads, float64(loads)/float64(len(snap.Chunks)), time.Since(start))
	}

	// Chunk-wise epoch through the epoch reader. The window must be 0
	// here: the cache holds 3 chunks and each group spans 2, so prefetching
	// even one group ahead would evict the group being consumed — the
	// reader's knob exists precisely to match the window to cache headroom.
	{
		plan, err := cl.ShufflePlan(42, 2)
		if err != nil {
			log.Fatal(err)
		}
		peer.DropAll()
		before := peer.Stats.ChunkLoads.Load()
		start := time.Now()
		r := epoch.NewReader(plan, snap, epoch.NewCacheSource(peer, snap, 4),
			epoch.WithWindow(0))
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
		r.Close()
		if err := r.Err(); err != nil {
			log.Fatalf("chunk-wise: %v", err)
		}
		report("chunk-wise shuffle:", int64(before), start)
	}

	// Fully shuffled epoch: plain per-file reads in a chunk-hopping order.
	{
		order := shuffle.Dataset(snap, 42)
		peer.DropAll()
		before := peer.Stats.ChunkLoads.Load()
		start := time.Now()
		for _, path := range order {
			if _, err := cl.Get(path); err != nil {
				log.Fatalf("full shuffle: %v", err)
			}
		}
		report("full dataset shuffle:", int64(before), start)
	}

	fmt.Println("\nsame files, same cache — only the order differs (§4.3's point).")
}
