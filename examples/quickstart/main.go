// Quickstart: stand up a complete in-process DIESEL deployment, write a
// small dataset through libDIESEL, download the metadata snapshot, and
// read files back three ways — the custom API, a batched read through
// the request executor, and the POSIX-style FUSE view.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"

	"diesel/internal/client"
	"diesel/internal/core"
	"diesel/internal/fuselite"
)

func main() {
	// 1. Deploy: 2 KV metadata nodes, 1 DIESEL server, in-memory chunks.
	dep, err := core.Deploy(core.Config{KVNodes: 2, DieselServers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	fmt.Printf("deployed DIESEL: servers=%v registry=%s\n", dep.ServerAddrs(), dep.RegistryAddr())

	// 2. Write a dataset (DL_connect / DL_put / DL_flush). Small files
	//    aggregate into chunks client-side before they reach the server.
	w, err := dep.NewClient("demo", 0)
	if err != nil {
		log.Fatal(err)
	}
	for class := range 3 {
		for i := range 40 {
			path := fmt.Sprintf("train/class%d/img%03d.jpg", class, i)
			data := fmt.Appendf(nil, "image bytes for %s", path)
			if err := w.Put(path, data); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	rec, err := w.DatasetRecord()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote dataset: %d files in %d chunks (%d bytes)\n",
		rec.FileCount, rec.ChunkCount, rec.TotalBytes)

	// 3. Save the metadata snapshot to disk (DL_save_meta), then load it
	//    in a fresh client (DL_load_meta): all metadata ops become local.
	snapPath := filepath.Join(mustTempDir(), "demo.snap")
	if err := w.SaveMeta(snapPath); err != nil {
		log.Fatal(err)
	}
	w.Close()

	r, err := dep.NewClient("demo", 1)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	if err := r.LoadMeta(snapPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded snapshot: %s\n", r.Snapshot())

	// 4. Metadata from the snapshot (DL_ls, DL_stat) — no server traffic.
	ents, err := r.Ls("train")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("train/ contains %d class directories\n", len(ents))
	si, err := r.Stat("train/class1/img007.jpg")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stat train/class1/img007.jpg: %d bytes in chunk %s\n", si.Size, si.ChunkID)

	// 5. Read through the API (DL_get) and the batched request executor.
	b, err := r.Get("train/class2/img011.jpg")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DL_get: %q\n", b)
	batch, err := r.GetBatch([]string{"train/class0/img000.jpg", "train/class0/img001.jpg", "train/class0/img002.jpg"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batched read returned %d files\n", len(batch))

	// 6. Chunk-wise shuffled epoch order (DL_shuffle).
	plan, err := r.ShufflePlan(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	order := plan.Paths(r.Snapshot())
	fmt.Printf("chunk-wise shuffle: %d files in %d groups, first 3: %v\n",
		len(order), len(plan.Groups), order[:3])

	// 7. The same dataset as a POSIX filesystem (DIESEL-FUSE).
	fsys, err := fuselite.Mount(fuselite.Config{Clients: []*client.Client{r}})
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	fs.WalkDir(fsys, ".", func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			count++
		}
		return err
	})
	data, err := fsys.ReadFile("train/class0/img000.jpg")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FUSE view: walked %d files; read %d bytes via POSIX path\n", count, len(data))
}

func mustTempDir() string {
	d, err := os.MkdirTemp("", "diesel-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	return d
}
