package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// capacityBaseline is the committed capacity contract
// (BENCH_capacity.json): the achieved rate the stack must sustain and
// the open-loop p99 it must stay under, with tolerances. The reference
// run pins latency to a modeled disk (diesel-load -disk-latency), so the
// p99 is dominated by deterministic sleeps and ports across machines.
type capacityBaseline struct {
	// Note documents how the baseline run was produced.
	Note string `json:"note,omitempty"`
	// RateTolerance is the tolerated fractional achieved-rate shortfall
	// (0.10 = fail below 90% of baseline).
	RateTolerance float64 `json:"rate_tolerance"`
	// P99Tolerance is the tolerated fractional open-loop p99 growth
	// (0.25 = fail above 125% of baseline).
	P99Tolerance float64 `json:"p99_tolerance"`
	// MaxErrorRate fails the gate outright when errors/ops exceeds it.
	MaxErrorRate float64 `json:"max_error_rate"`

	AchievedRateQPS float64 `json:"achieved_rate_qps"`
	OpenLoopP99S    float64 `json:"open_loop_p99_s"`

	// EpochStallP99S, when nonzero, additionally gates the background
	// epoch readers' stall p99 (report field epoch_stall) — the
	// hedging-regression tripwire of the disk-tail smoke. The tolerance
	// is fractional growth like P99Tolerance but defaults to 1.0
	// (fail above 2x): stall quantiles under hedging sit at
	// scheduler-jitter scale and are the noisiest figure gated here.
	EpochStallP99S      float64 `json:"epoch_stall_p99_s,omitempty"`
	EpochStallTolerance float64 `json:"epoch_stall_tolerance,omitempty"`
}

// capacityReport is the slice of loadgen.Report the gate reads. Decoding
// it here (rather than importing internal/loadgen) keeps benchguard a
// pure consumer of the JSON contract — if the report shape drifts, the
// gate fails loudly instead of silently recompiling into agreement.
type capacityReport struct {
	Harness         string  `json:"harness"`
	OfferedRateQPS  float64 `json:"offered_rate_qps"`
	AchievedRateQPS float64 `json:"achieved_rate_qps"`
	Ops             uint64  `json:"ops"`
	Errors          uint64  `json:"errors"`
	Shed            uint64  `json:"shed"`
	OpenLoop        struct {
		P99S float64 `json:"p99_s"`
	} `json:"open_loop"`
	EpochStall *struct {
		Count uint64  `json:"count"`
		P99S  float64 `json:"p99_s"`
	} `json:"epoch_stall"`
}

// runCapacity gates a diesel-load JSON report against the committed
// capacity baseline (or rewrites the baseline with -update). Exits the
// process: 0 pass, 1 fail.
func runCapacity(reportPath, basePath string, update bool) {
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		fatal(err)
	}
	var rep capacityReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("parse %s: %w", reportPath, err))
	}
	if rep.Harness != "open-loop" {
		fatal(fmt.Errorf("%s: harness %q — the capacity gate only accepts open-loop reports "+
			"(closed-loop numbers hide stalls)", reportPath, rep.Harness))
	}
	if rep.Ops == 0 {
		fatal(fmt.Errorf("%s: zero operations completed", reportPath))
	}

	if update {
		b := capacityBaseline{
			Note: fmt.Sprintf("refreshed from %s (offered %.0f op/s)",
				reportPath, rep.OfferedRateQPS),
			RateTolerance:   0.10,
			P99Tolerance:    0.25,
			MaxErrorRate:    0.01,
			AchievedRateQPS: rep.AchievedRateQPS,
			OpenLoopP99S:    rep.OpenLoop.P99S,
		}
		if es := rep.EpochStall; es != nil && es.Count > 0 {
			b.EpochStallP99S = es.P99S
			b.EpochStallTolerance = 1.0
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(basePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote capacity baseline %s (%.0f op/s, p99 %.3fms)\n",
			basePath, b.AchievedRateQPS, b.OpenLoopP99S*1e3)
		return
	}

	braw, err := os.ReadFile(basePath)
	if err != nil {
		fatal(err)
	}
	var base capacityBaseline
	if err := json.Unmarshal(braw, &base); err != nil {
		fatal(fmt.Errorf("parse %s: %w", basePath, err))
	}
	if base.RateTolerance <= 0 {
		base.RateTolerance = 0.10
	}
	if base.P99Tolerance <= 0 {
		base.P99Tolerance = 0.25
	}

	failed := false
	check := func(ok bool, format string, args ...any) {
		verdict := "ok  "
		if !ok {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchguard: %s  %s\n", verdict, fmt.Sprintf(format, args...))
	}

	rateFloor := base.AchievedRateQPS * (1 - base.RateTolerance)
	check(rep.AchievedRateQPS >= rateFloor,
		"achieved rate %.0f op/s, baseline %.0f (floor %.0f, -%.0f%%)",
		rep.AchievedRateQPS, base.AchievedRateQPS, rateFloor, base.RateTolerance*100)

	p99Ceil := base.OpenLoopP99S * (1 + base.P99Tolerance)
	check(rep.OpenLoop.P99S <= p99Ceil,
		"open-loop p99 %.3fms, baseline %.3fms (ceiling %.3fms, +%.0f%%)",
		rep.OpenLoop.P99S*1e3, base.OpenLoopP99S*1e3, p99Ceil*1e3, base.P99Tolerance*100)

	errRate := float64(rep.Errors) / float64(rep.Ops)
	check(errRate <= base.MaxErrorRate,
		"error rate %.4f (max %.4f)", errRate, base.MaxErrorRate)

	check(rep.Shed == 0, "shed arrivals %d (must be 0: shedding means the queue overflowed)", rep.Shed)

	if base.EpochStallP99S > 0 {
		tol := base.EpochStallTolerance
		if tol <= 0 {
			tol = 1.0
		}
		stallCeil := base.EpochStallP99S * (1 + tol)
		if es := rep.EpochStall; es == nil || es.Count == 0 {
			check(false, "epoch stall p99: report has no epoch_stall samples (did the readers run?)")
		} else {
			check(es.P99S <= stallCeil,
				"epoch stall p99 %.3fms, baseline %.3fms (ceiling %.3fms, +%.0f%%)",
				es.P99S*1e3, base.EpochStallP99S*1e3, stallCeil*1e3, tol*100)
		}
	}

	if failed {
		fmt.Println("benchguard: capacity regression detected")
		os.Exit(1)
	}
	fmt.Println("benchguard: capacity gate passed")
}
