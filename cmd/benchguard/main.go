// Command benchguard compares `go test -benchmem` output against a
// checked-in allocation baseline and fails on regressions. It exists to
// keep the zero-copy read path honest: an accidental extra allocation on
// the frame, cache-hit or epoch path is caught by CI, not by a profiler
// six months later.
//
// Usage:
//
//	go test -run '^$' -bench 'WireFrame|DcacheHit|EpochRead' -benchmem ./... |
//	    go run ./cmd/benchguard -baseline BENCH_baseline.json
//
// The guard reads benchmark lines from stdin and fails (exit 1) when a
// benchmark's allocs/op exceeds its baseline by more than the threshold
// (default 10%). A benchmark whose baseline is 0 allocs/op must stay at
// 0 — the zero-allocation guarantee is exact, not proportional.
//
// Refresh the baseline after an intentional change with -update, which
// rewrites the JSON from the measured input instead of comparing.
//
// A second mode gates capacity instead of allocations: -capacity reads a
// cmd/diesel-load open-loop JSON report and fails when the achieved rate
// falls more than rate_tolerance below the committed BENCH_capacity.json
// baseline or the open-loop p99 grows more than p99_tolerance above it:
//
//	go run ./cmd/diesel-load -rate 1200 -duration 15s -disk-latency 1ms -json report.json
//	go run ./cmd/benchguard -capacity report.json -capacity-baseline BENCH_capacity.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type entry struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
}

type baseline struct {
	// Threshold is the tolerated fractional allocs/op growth (0.10 = 10%).
	Threshold  float64          `json:"threshold"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	basePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
	update := flag.Bool("update", false, "rewrite the baseline from stdin instead of comparing")
	threshold := flag.Float64("threshold", 0, "override the baseline's regression threshold (fraction)")
	capacity := flag.String("capacity", "", "gate a diesel-load JSON report against -capacity-baseline instead of reading bench lines")
	capacityBase := flag.String("capacity-baseline", "BENCH_capacity.json", "capacity baseline JSON file")
	flag.Parse()

	if *capacity != "" {
		runCapacity(*capacity, *capacityBase, *update)
		return
	}

	got, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (did the bench run fail?)"))
	}

	if *update {
		th := *threshold
		if th == 0 {
			th = 0.10
		}
		if err := writeBaseline(*basePath, baseline{Threshold: th, Benchmarks: got}); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(got), *basePath)
		return
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *basePath, err))
	}
	th := base.Threshold
	if *threshold != 0 {
		th = *threshold
	}
	if th == 0 {
		th = 0.10
	}

	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		cur := got[name]
		ref, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("benchguard: NEW   %-48s %8.0f allocs/op (no baseline, not compared)\n",
				name, cur.AllocsPerOp)
			continue
		}
		limit := ref.AllocsPerOp * (1 + th)
		if cur.AllocsPerOp > limit && cur.AllocsPerOp > ref.AllocsPerOp {
			failed = true
			fmt.Printf("benchguard: FAIL  %-48s %8.0f allocs/op, baseline %.0f (limit %.1f)\n",
				name, cur.AllocsPerOp, ref.AllocsPerOp, limit)
		} else {
			fmt.Printf("benchguard: ok    %-48s %8.0f allocs/op, baseline %.0f\n",
				name, cur.AllocsPerOp, ref.AllocsPerOp)
		}
	}
	for name := range base.Benchmarks {
		if _, ok := got[name]; !ok {
			fmt.Printf("benchguard: MISS  %-48s in baseline but not measured\n", name)
		}
	}
	if failed {
		fmt.Println("benchguard: allocation regression detected")
		os.Exit(1)
	}
}

// parseBench extracts per-benchmark metrics from `go test -benchmem`
// output. Lines look like:
//
//	BenchmarkWireFrameRead/64KB-8  1000  1234 ns/op  53.1 MB/s  0 B/op  0 allocs/op
//
// The trailing "-8" GOMAXPROCS suffix is stripped so baselines compare
// across machines.
func parseBench(f *os.File) (map[string]entry, error) {
	out := make(map[string]entry)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo so the CI log keeps the raw numbers
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var e entry
		seen := false
		for i := 2; i < len(fields)-1; i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
				seen = true
			}
		}
		if seen {
			out[name] = e
		}
	}
	return out, sc.Err()
}

func writeBaseline(path string, b baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
