// Command diesel-load is DIESEL's open-loop load harness: it offers a
// fixed arrival schedule (constant or Poisson) to a real
// diesel-server+kvnode stack and measures every operation from its
// *intended* start, so a stalled or faulted system shows up as tail
// latency instead of silently slowing the generator down (coordinated
// omission — the flaw of closed-loop "N workers in a loop" drivers,
// including diesel-bench's service-time figures).
//
// Two modes:
//
//   - Embedded (default): deploys kvnodes + diesel-servers in-process on
//     loopback TCP, ingests a synthetic dataset, and drives it. All
//     fault kinds are available, including node kill/restart.
//   - External (-connect): drives already-running servers over TCP
//     against an existing dataset (-dataset). Only net-* faults work.
//
// Fault schedules are timed windows on the run timeline:
//
//	diesel-load -rate 2000 -duration 30s \
//	  -faults "5s+3s:server-kill:0; 12s+3s:disk-slow:10ms; 20s+3s:net-drop:0.3"
//
// The JSON report (-json) is the machine-readable contract:
// cmd/benchguard -capacity gates achieved rate and open-loop p99 against
// a committed baseline in CI, and EXPERIMENTS.md records soak runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"diesel/internal/loadgen"
	"diesel/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("diesel-load: ")

	// Load shape.
	rate := flag.Float64("rate", 500, "offered arrival rate, operations/second")
	duration := flag.Duration("duration", 10*time.Second, "arrival-generation window (completion may run longer)")
	arrival := flag.String("arrival", "constant", "arrival process: constant or poisson")
	concurrency := flag.Int("concurrency", 64, "executor goroutines (simulated trainer processes)")
	generators := flag.Int("generators", 4, "arrival-generator goroutines (phase-offset schedule shards)")
	seed := flag.Int64("seed", 1, "seed for arrival draws and workload mix")
	mix := flag.String("mix", "get=6,batch=2,chunk=1", "weighted op mix: get,direct,batch,chunk,view,stat (kind=weight,...)")
	faults := flag.String("faults", "", `fault schedule: "start+dur:kind[:arg]; ..." — kinds kv-kill, server-kill, disk-slow, disk-tail, net-delay, net-drop, net-sever`)
	closedLoop := flag.Bool("closed-loop", false, "run the classic closed-loop harness instead (service-time-only numbers, for comparison)")

	// System under test.
	connect := flag.String("connect", "", "comma-separated external diesel-server addresses (empty = embedded stack)")
	dataset := flag.String("dataset", "", "dataset name (external mode; must already be ingested)")
	kvnodes := flag.Int("kvnodes", 2, "embedded: metadata KV nodes")
	servers := flag.Int("servers", 2, "embedded: DIESEL servers")
	files := flag.Int("files", 512, "embedded: dataset size in files")
	fileSize := flag.Int("file-size", 4096, "embedded: bytes per file")
	chunkTarget := flag.Int("chunk-target", 64<<10, "embedded: chunk payload target bytes")
	diskLatency := flag.Duration("disk-latency", 0, "embedded: modeled per-op store latency (makes p99 portable in CI)")
	ssdCache := flag.Int64("ssd-cache", 0, "embedded: fast-tier cache capacity in bytes")
	clients := flag.Int("clients", 8, "libDIESEL contexts to round-robin ops over")
	batch := flag.Int("batch", 8, "paths per GetBatch op")
	taskNodes := flag.Int("task-nodes", 0, "embedded: simulated nodes of a DLT task with the distributed cache (0 = no task)")
	clientsPerNode := flag.Int("clients-per-node", 0, "embedded: I/O processes per task node")
	jobs := flag.Int("jobs", 0, "embedded: run this many concurrent training jobs over the one dataset, sharing a chunk cache (needs -task-nodes/-clients-per-node; <2 = single task)")
	sharedCacheBytes := flag.Int64("shared-cache-bytes", 0, "embedded: shared chunk-cache budget in -jobs mode (0 = unlimited)")
	spillDir := flag.String("spill-dir", "", "embedded: local-SSD spill tier root for the task cache (per-node subdirs; in -jobs mode the shared cache spills here directly)")
	spillBytes := flag.Int64("spill-bytes", 0, "embedded: spill-tier disk budget in bytes (0 = unlimited)")
	epochReaders := flag.Int("epoch-readers", 0, "background pipelined epoch readers looping during the run")
	epochHedge := flag.Bool("epoch-hedge", false, "hedge the epoch readers' straggling group fetches (first success wins)")
	epochReorder := flag.Int("epoch-reorder", 0, "epoch readers serve whichever of the next k prefetched groups lands first")
	epochDeadline := flag.Duration("epoch-deadline", 0, "per-attempt deadline on the epoch readers' group fetches")
	watchdog := flag.Bool("watchdog", false, "embedded: run the SLO engine + anomaly watchdog alongside the load (CI-scale burn windows)")
	diagSpool := flag.String("diag-spool", "", "embedded: watchdog bundle spool directory (empty = temp dir; implies nothing unless -watchdog)")
	stallSLO := flag.Duration("stall-slo", 10*time.Millisecond, "embedded: epoch-stall latency SLO threshold the watchdog's burn rates run on")
	readSLO := flag.Duration("read-slo", 20*time.Millisecond, "embedded: served-read latency SLO threshold the watchdog's burn rates run on")

	// Output and gating.
	jsonPath := flag.String("json", "", "write the JSON capacity report here (- = stdout)")
	maxErrorRate := flag.Float64("max-error-rate", -1, "exit nonzero if errors/ops exceeds this (negative = no gate)")
	minAmplification := flag.Float64("min-amplification", -1, "exit nonzero if the -jobs shared-cache amplification falls below this (negative = no gate)")
	minDiagBundles := flag.Int("min-diag-bundles", -1, "exit nonzero if the -watchdog captured fewer diagnostic bundles than this (negative = no gate)")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/pprof on this address during the run")
	flag.Parse()

	if *metricsAddr != "" {
		go func() {
			if err := http.ListenAndServe(*metricsAddr, obs.NewMux(obs.Default())); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	// Build the system under test.
	var st *loadgen.Stack
	var err error
	if *connect != "" {
		if *dataset == "" {
			log.Fatal("-connect requires -dataset")
		}
		st, err = loadgen.ConnectStack(strings.Split(*connect, ","), *dataset, loadgen.StackConfig{
			Clients:   *clients,
			BatchSize: *batch,
		})
	} else {
		st, err = loadgen.StartStack(loadgen.StackConfig{
			KVNodes:          *kvnodes,
			Servers:          *servers,
			Files:            *files,
			FileSizeB:        *fileSize,
			ChunkTarget:      *chunkTarget,
			DiskLatency:      *diskLatency,
			SSDCacheBytes:    *ssdCache,
			Clients:          *clients,
			BatchSize:        *batch,
			TaskNodes:        *taskNodes,
			ClientsPerNode:   *clientsPerNode,
			Jobs:             *jobs,
			SharedCacheBytes: *sharedCacheBytes,
			SpillDir:         *spillDir,
			SpillBytes:       *spillBytes,
			EpochReaders:     *epochReaders,
			EpochHedge:       *epochHedge,
			EpochReorder:     *epochReorder,
			EpochDeadline:    *epochDeadline,
			Watchdog:         *watchdog,
			DiagSpoolDir:     *diagSpool,
			StallSLO:         *stallSLO,
			ReadSLO:          *readSLO,
		})
	}
	if err != nil {
		log.Fatalf("stack: %v", err)
	}
	defer st.Close()

	ops, err := st.Ops(*mix)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := st.ParseSchedule(*faults)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	mode := "open-loop"
	if *closedLoop {
		mode = "closed-loop"
	}
	log.Printf("%s run: %.0f op/s (%s) for %v, mix %q, %d faults",
		mode, *rate, *arrival, *duration, *mix, len(sched))

	rep, err := st.RunEmbedded(ctx, loadgen.Config{
		Rate:        *rate,
		Duration:    *duration,
		Concurrency: *concurrency,
		Generators:  *generators,
		Arrival:     loadgen.Arrival(*arrival),
		Seed:        *seed,
		Ops:         ops,
		Faults:      sched,
		ClosedLoop:  *closedLoop,
	})
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	rep.Summary(os.Stderr)
	switch *jsonPath {
	case "":
	case "-":
		if err := rep.WriteJSON(os.Stdout); err != nil {
			log.Fatalf("write report: %v", err)
		}
	default:
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatalf("write report: %v", err)
		}
		if err := rep.WriteJSON(f); err != nil {
			log.Fatalf("write report: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("write report: %v", err)
		}
		log.Printf("report written to %s", *jsonPath)
	}

	if *maxErrorRate >= 0 && rep.ErrorRate() > *maxErrorRate {
		fmt.Fprintf(os.Stderr, "FAIL: error rate %.4f exceeds -max-error-rate %.4f\n",
			rep.ErrorRate(), *maxErrorRate)
		os.Exit(1)
	}
	if *minAmplification >= 0 {
		if rep.MultiJob == nil {
			fmt.Fprintln(os.Stderr, "FAIL: -min-amplification set but the run produced no multi-job report (need -jobs >= 2 with a task)")
			os.Exit(1)
		}
		if rep.MultiJob.Amplification < *minAmplification {
			fmt.Fprintf(os.Stderr, "FAIL: shared-cache amplification %.2f below -min-amplification %.2f\n",
				rep.MultiJob.Amplification, *minAmplification)
			os.Exit(1)
		}
	}
	if *minDiagBundles >= 0 {
		if rep.Diag == nil {
			fmt.Fprintln(os.Stderr, "FAIL: -min-diag-bundles set but the run had no watchdog (need -watchdog in embedded mode)")
			os.Exit(1)
		}
		if len(rep.Diag.Bundles) < *minDiagBundles {
			fmt.Fprintf(os.Stderr, "FAIL: watchdog captured %d diagnostic bundle(s), below -min-diag-bundles %d\n",
				len(rep.Diag.Bundles), *minDiagBundles)
			os.Exit(1)
		}
	}
}
