// Command kvnode runs one node of DIESEL's metadata key-value database
// (the role one Redis instance plays in the paper). Point diesel-server's
// -kv flag at a comma-separated list of kvnode addresses.
//
// Usage:
//
//	kvnode -addr :7401
package main

import (
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"

	"diesel/internal/kvstore"
	"diesel/internal/obs"
	"diesel/internal/slo"
	"diesel/internal/tracing"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7401", "listen address")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /healthz, /debug/pprof and /debug/traces on this address (empty = disabled)")
	diagSpool := flag.String("diag-spool", "", "run the anomaly watchdog, spooling diagnostic bundles here and serving them on <metrics>/debug/diag (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	logger := newLogger(*logLevel)
	slog.SetDefault(logger)
	// A KV node never roots traces of its own; it records the spans of
	// requests whose callers sampled them (the trace block on the wire).
	tracing.SetProcess("kvnode")
	tracing.SetSampleRate(0)
	tracing.EnableTracing(true)

	s, err := kvstore.NewServer(*addr)
	if err != nil {
		logger.Error("kvnode: listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("kvnode serving", "addr", s.Addr())

	// The watchdog has no SLO engine on a KV node (the burn-rate
	// objectives live server- and client-side); it still auto-captures on
	// anomaly events and answers `dlcmd diag -trigger`, so a cross-process
	// collection includes this node's traces, metrics and profiles.
	var watchdog *slo.Watchdog
	if *diagSpool != "" {
		watchdog, err = slo.NewWatchdog(slo.WatchdogConfig{Dir: *diagSpool})
		if err != nil {
			logger.Error("kvnode: watchdog failed", "err", err)
			os.Exit(1)
		}
		watchdog.Watch()
		defer watchdog.Close()
		logger.Info("kvnode watchdog on", "spool", *diagSpool)
	}

	if *metricsAddr != "" {
		s.RegisterMetrics(obs.Default())
		mux := obs.NewMux(obs.Default())
		mux.Handle("/debug/diag", slo.Handler(watchdog))
		lis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			logger.Error("kvnode: metrics listen failed", "addr", *metricsAddr, "err", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(lis)
		defer srv.Close()
		bound := lis.Addr().String()
		logger.Info("kvnode metrics", "url", "http://"+bound+"/metrics",
			"traces", "http://"+bound+"/debug/traces",
			"diag", "http://"+bound+"/debug/diag")
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	logger.Info("kvnode shutting down", "requests", s.Requests())
	s.Close()
}

// newLogger builds the process logger at the requested level. Text output
// to stderr, same as the log package this binary used before.
func newLogger(level string) *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		lvl = slog.LevelInfo
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
}
