// Command kvnode runs one node of DIESEL's metadata key-value database
// (the role one Redis instance plays in the paper). Point diesel-server's
// -kv flag at a comma-separated list of kvnode addresses.
//
// Usage:
//
//	kvnode -addr :7401
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"diesel/internal/kvstore"
	"diesel/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7401", "listen address")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = disabled)")
	flag.Parse()

	s, err := kvstore.NewServer(*addr)
	if err != nil {
		log.Fatalf("kvnode: %v", err)
	}
	log.Printf("kvnode serving on %s", s.Addr())

	if *metricsAddr != "" {
		s.RegisterMetrics(obs.Default())
		bound, stop, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			log.Fatalf("kvnode: metrics: %v", err)
		}
		defer stop()
		log.Printf("kvnode metrics on http://%s/metrics", bound)
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Printf("kvnode: %d requests served, shutting down", s.Requests())
	s.Close()
}
