// Command kvnode runs one node of DIESEL's metadata key-value database
// (the role one Redis instance plays in the paper). Point diesel-server's
// -kv flag at a comma-separated list of kvnode addresses.
//
// Usage:
//
//	kvnode -addr :7401
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"diesel/internal/kvstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7401", "listen address")
	flag.Parse()

	s, err := kvstore.NewServer(*addr)
	if err != nil {
		log.Fatalf("kvnode: %v", err)
	}
	log.Printf("kvnode serving on %s", s.Addr())

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Printf("kvnode: %d requests served, shutting down", s.Requests())
	s.Close()
}
