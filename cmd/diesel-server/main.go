// Command diesel-server runs a DIESEL server (Figure 2): it hides the
// object store and the metadata key-value cluster behind the DIESEL RPC
// protocol that libDIESEL clients and DLCMD speak.
//
// Usage:
//
//	kvnode -addr :7401 &
//	kvnode -addr :7402 &
//	diesel-server -addr :7400 -kv 127.0.0.1:7401,127.0.0.1:7402 -store /data/diesel
//
// Multiple diesel-server processes may share the same -kv cluster and
// -store directory; servers are stateless, so clients can round-robin
// across them (the paper evaluates 1, 3 and 5 servers).
package main

import (
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"time"

	"diesel/internal/kvstore"
	"diesel/internal/objstore"
	"diesel/internal/obs"
	"diesel/internal/server"
	"diesel/internal/tracing"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7400", "listen address")
	kvAddrs := flag.String("kv", "", "comma-separated kvnode addresses (required)")
	storeDir := flag.String("store", "", "chunk storage directory (empty = in-memory)")
	ssdCache := flag.Int64("ssd-cache", 0, "fast-tier cache capacity in bytes (0 = disabled)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /healthz, /debug/pprof and /debug/traces on this address (empty = disabled)")
	kvTimeout := flag.Duration("kv-timeout", 5*time.Second, "per-RPC deadline for metadata KV calls (0 = none)")
	kvRetries := flag.Int("kv-retries", 2, "extra attempts for idempotent KV reads after a transport failure (writes never retry; negative disables)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	traceRate := flag.Float64("trace", 0, "record locally-rooted trace sample rate in [0,1] (remotely-sampled requests are always recorded)")
	flag.Parse()

	logger := newLogger(*logLevel)
	slog.SetDefault(logger)
	tracing.SetProcess("diesel-server")
	tracing.SetSampleRate(*traceRate)
	tracing.EnableTracing(true)

	if *kvAddrs == "" {
		logger.Error("diesel-server: -kv is required")
		os.Exit(1)
	}
	maxRetries := *kvRetries
	if maxRetries <= 0 {
		maxRetries = -1 // Options treats 0 as "default"; negative disables
	}
	kv, err := kvstore.DialClusterOpts(strings.Split(*kvAddrs, ","), kvstore.Options{
		ConnsPerNode: 4,
		CallTimeout:  *kvTimeout,
		MaxRetries:   maxRetries,
	})
	if err != nil {
		logger.Error("diesel-server: dial kv cluster failed", "err", err)
		os.Exit(1)
	}

	var objects objstore.Store
	if *storeDir != "" {
		objects, err = objstore.NewDisk(*storeDir)
		if err != nil {
			logger.Error("diesel-server: open store failed", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
	} else {
		objects = objstore.NewMemory()
	}
	if *ssdCache > 0 {
		objects = objstore.NewTiered(objstore.NewMemory(), objects, *ssdCache)
	}

	core := server.New(kv, objects, func() int64 { return time.Now().UnixNano() })
	rpc, err := server.NewRPC(core, *addr)
	if err != nil {
		logger.Error("diesel-server: listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("diesel-server serving", "addr", rpc.Addr(), "kv", *kvAddrs, "store", *storeDir)

	if *metricsAddr != "" {
		rpc.RegisterMetrics(obs.Default())
		bound, stop, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			logger.Error("diesel-server: metrics listen failed", "addr", *metricsAddr, "err", err)
			os.Exit(1)
		}
		defer stop()
		logger.Info("diesel-server metrics", "url", "http://"+bound+"/metrics",
			"traces", "http://"+bound+"/debug/traces")
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	logger.Info("diesel-server shutting down", "requests", rpc.Requests())
	rpc.Close()
}

// newLogger builds the process logger at the requested level. Text output
// to stderr, same as the log package these binaries used before.
func newLogger(level string) *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		lvl = slog.LevelInfo
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
}
