// Command diesel-server runs a DIESEL server (Figure 2): it hides the
// object store and the metadata key-value cluster behind the DIESEL RPC
// protocol that libDIESEL clients and DLCMD speak.
//
// Usage:
//
//	kvnode -addr :7401 &
//	kvnode -addr :7402 &
//	diesel-server -addr :7400 -kv 127.0.0.1:7401,127.0.0.1:7402 -store /data/diesel
//
// Multiple diesel-server processes may share the same -kv cluster and
// -store directory; servers are stateless, so clients can round-robin
// across them (the paper evaluates 1, 3 and 5 servers).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"diesel/internal/etcd"
	"diesel/internal/kvstore"
	"diesel/internal/objstore"
	"diesel/internal/obs"
	"diesel/internal/server"
	"diesel/internal/slo"
	"diesel/internal/tracing"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7400", "listen address")
	kvAddrs := flag.String("kv", "", "comma-separated kvnode addresses (required)")
	storeDir := flag.String("store", "", "chunk storage directory (empty = in-memory)")
	ssdCache := flag.Int64("ssd-cache", 0, "fast-tier cache capacity in bytes (0 = disabled)")
	cacheSpillDir := flag.String("cache-spill-dir", "", "local-disk spill tier under the -ssd-cache fast tier: evicted objects demote here and a restarted server rewarms from it (requires -ssd-cache)")
	cacheSpillBytes := flag.Int64("cache-spill-bytes", 0, "spill-tier disk budget in bytes (0 = unlimited)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /healthz, /debug/pprof and /debug/traces on this address (empty = disabled)")
	kvTimeout := flag.Duration("kv-timeout", 5*time.Second, "per-RPC deadline for metadata KV calls (0 = none)")
	kvRetries := flag.Int("kv-retries", 2, "extra attempts for idempotent KV reads after a transport failure (writes never retry; negative disables)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	traceRate := flag.Float64("trace", 0, "record locally-rooted trace sample rate in [0,1] (remotely-sampled requests are always recorded)")
	jobTTL := flag.Duration("job-ttl", 0, "training-job lease TTL; a job whose heartbeats stop is dropped from the roster after this long (0 = default)")
	jobEtcd := flag.String("job-etcd", "", "etcd registry address backing the job roster, shared across servers (empty = per-process roster)")
	quotaSpec := flag.String("tenant-quotas", "", `per-tenant admission quotas: "tenant=qps:bytes_per_sec;..." (0 leaves a dimension unlimited)`)
	fairLimit := flag.Int("fair-limit", 0, "bound concurrent reads; queued requests dispatch across jobs by weighted stride scheduling (0 = unbounded)")
	sloOn := flag.Bool("slo", false, "evaluate SLO burn rates (read p99, quota rejections, shared hit rate) and publish anomaly events")
	sloReadP99 := flag.Duration("slo-read-p99", 50*time.Millisecond, "read-latency SLO threshold for -slo")
	sloBudget := flag.Float64("slo-budget", 0.01, "SLO error budget for -slo: tolerated bad fraction (0.01 = 99% within objective)")
	diagSpool := flag.String("diag-spool", "", "run the anomaly watchdog, spooling diagnostic bundles here and serving them on <metrics>/debug/diag (empty = disabled)")
	flag.Parse()

	logger := newLogger(*logLevel)
	slog.SetDefault(logger)
	tracing.SetProcess("diesel-server")
	tracing.SetSampleRate(*traceRate)
	tracing.EnableTracing(true)

	if *kvAddrs == "" {
		logger.Error("diesel-server: -kv is required")
		os.Exit(1)
	}
	maxRetries := *kvRetries
	if maxRetries <= 0 {
		maxRetries = -1 // Options treats 0 as "default"; negative disables
	}
	kv, err := kvstore.DialClusterOpts(strings.Split(*kvAddrs, ","), kvstore.Options{
		ConnsPerNode: 4,
		CallTimeout:  *kvTimeout,
		MaxRetries:   maxRetries,
	})
	if err != nil {
		logger.Error("diesel-server: dial kv cluster failed", "err", err)
		os.Exit(1)
	}

	var objects objstore.Store
	if *storeDir != "" {
		objects, err = objstore.NewDisk(*storeDir)
		if err != nil {
			logger.Error("diesel-server: open store failed", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
	} else {
		objects = objstore.NewMemory()
	}
	if *ssdCache > 0 {
		tiered := objstore.NewTiered(objstore.NewMemory(), objects, *ssdCache)
		if *cacheSpillDir != "" {
			rec, err := tiered.EnableSpill(*cacheSpillDir, *cacheSpillBytes)
			if err != nil {
				logger.Error("diesel-server: open cache spill tier failed", "dir", *cacheSpillDir, "err", err)
				os.Exit(1)
			}
			logger.Info("diesel-server cache spill tier on", "dir", *cacheSpillDir,
				"budget", *cacheSpillBytes, "rewarmed_objects", rec.Entries, "rewarmed_bytes", rec.Bytes)
		}
		defer tiered.Close() // leaves the spill manifest for the next start
		objects = tiered
	} else if *cacheSpillDir != "" {
		logger.Warn("diesel-server: -cache-spill-dir ignored without -ssd-cache")
	}

	core := server.New(kv, objects, func() int64 { return time.Now().UnixNano() })

	// Multi-job serving plane: the job roster is always on. Point every
	// server of a deployment at one -job-etcd registry for a shared
	// roster; without it each server keeps its own (fine for one server,
	// but multi-server refcounts then only see locally-connected jobs).
	var jobStore server.JobStore = etcd.InProcess{R: etcd.NewRegistry()}
	if *jobEtcd != "" {
		ec, err := etcd.Dial(*jobEtcd)
		if err != nil {
			logger.Error("diesel-server: dial job registry failed", "addr", *jobEtcd, "err", err)
			os.Exit(1)
		}
		defer ec.Close()
		jobStore = ec
	}
	jobs := core.EnableJobs(jobStore, *jobTTL)
	jobs.StartSweeper(0)
	defer jobs.StopSweeper()

	tenants, err := applyQuotas(core, *quotaSpec)
	if err != nil {
		logger.Error("diesel-server: bad -tenant-quotas", "err", err)
		os.Exit(1)
	}
	core.Fair.SetLimit(*fairLimit)

	rpc, err := server.NewRPC(core, *addr)
	if err != nil {
		logger.Error("diesel-server: listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("diesel-server serving", "addr", rpc.Addr(), "kv", *kvAddrs, "store", *storeDir)

	// SLO engine and anomaly watchdog: both off by default (zero hot-path
	// cost — the event gate stays cold). -slo publishes breach/storm
	// events; -diag-spool turns those events into diagnostic bundles.
	var eng *slo.Engine
	if *sloOn {
		reg := obs.Default()
		objectives := []slo.Objective{
			slo.ReadLatencyObjective(reg, *sloReadP99, *sloBudget),
			slo.QuotaRejectionObjective(reg, *sloBudget, tenants...),
		}
		eng = slo.NewEngine(slo.EngineConfig{Registry: reg, Objectives: objectives})
		eng.Start()
		defer eng.Stop()
		logger.Info("diesel-server slo engine on", "read_p99", *sloReadP99, "budget", *sloBudget)
	}
	var watchdog *slo.Watchdog
	if *diagSpool != "" {
		cfg := slo.WatchdogConfig{
			Dir: *diagSpool,
			Roster: func() any {
				jobs, _ := core.JobRegistry().Jobs()
				return jobs
			},
		}
		if eng != nil {
			cfg.Status = eng.Status
		}
		watchdog, err = slo.NewWatchdog(cfg)
		if err != nil {
			logger.Error("diesel-server: watchdog failed", "err", err)
			os.Exit(1)
		}
		watchdog.Watch()
		defer watchdog.Close()
		logger.Info("diesel-server watchdog on", "spool", *diagSpool)
	}

	if *metricsAddr != "" {
		rpc.RegisterMetrics(obs.Default())
		mux := obs.NewMux(obs.Default())
		mux.Handle("/debug/jobs", core.JobsHandler())
		// Tier occupancy and spill-manifest summary; 404 JSON without a
		// -ssd-cache tier, so probes can tell "off" from "gone".
		mux.Handle("/debug/cache", core.CacheHandler())
		// Mounted even with the watchdog off: it answers 503 JSON then,
		// so probes can tell "off" from "gone".
		mux.Handle("/debug/diag", slo.Handler(watchdog))
		lis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			logger.Error("diesel-server: metrics listen failed", "addr", *metricsAddr, "err", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(lis)
		defer srv.Close()
		bound := lis.Addr().String()
		logger.Info("diesel-server metrics", "url", "http://"+bound+"/metrics",
			"jobs", "http://"+bound+"/debug/jobs",
			"cache", "http://"+bound+"/debug/cache",
			"traces", "http://"+bound+"/debug/traces",
			"diag", "http://"+bound+"/debug/diag")
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	logger.Info("diesel-server shutting down", "requests", rpc.Requests())
	rpc.Close()
}

// applyQuotas parses "tenant=qps:bytes_per_sec;..." and installs each
// quota on the server, returning the tenant names (the SLO engine's
// quota-rejection objective tracks exactly the quota'd tenants). Either
// dimension may be 0 to leave it unlimited.
func applyQuotas(core *server.Server, spec string) ([]string, error) {
	var tenants []string
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tenant, lim, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("%q: want tenant=qps:bytes_per_sec", part)
		}
		qpsStr, bytesStr, ok := strings.Cut(lim, ":")
		if !ok {
			return nil, fmt.Errorf("%q: want tenant=qps:bytes_per_sec", part)
		}
		qps, err := strconv.ParseFloat(strings.TrimSpace(qpsStr), 64)
		if err != nil {
			return nil, fmt.Errorf("%q: bad qps: %w", part, err)
		}
		bps, err := strconv.ParseFloat(strings.TrimSpace(bytesStr), 64)
		if err != nil {
			return nil, fmt.Errorf("%q: bad bytes_per_sec: %w", part, err)
		}
		tenant = strings.TrimSpace(tenant)
		core.SetTenantQuota(tenant, server.TenantQuota{QPS: qps, BytesPerSec: bps})
		tenants = append(tenants, tenant)
	}
	return tenants, nil
}

// newLogger builds the process logger at the requested level. Text output
// to stderr, same as the log package these binaries used before.
func newLogger(level string) *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		lvl = slog.LevelInfo
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
}
