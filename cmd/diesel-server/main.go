// Command diesel-server runs a DIESEL server (Figure 2): it hides the
// object store and the metadata key-value cluster behind the DIESEL RPC
// protocol that libDIESEL clients and DLCMD speak.
//
// Usage:
//
//	kvnode -addr :7401 &
//	kvnode -addr :7402 &
//	diesel-server -addr :7400 -kv 127.0.0.1:7401,127.0.0.1:7402 -store /data/diesel
//
// Multiple diesel-server processes may share the same -kv cluster and
// -store directory; servers are stateless, so clients can round-robin
// across them (the paper evaluates 1, 3 and 5 servers).
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"diesel/internal/kvstore"
	"diesel/internal/objstore"
	"diesel/internal/obs"
	"diesel/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7400", "listen address")
	kvAddrs := flag.String("kv", "", "comma-separated kvnode addresses (required)")
	storeDir := flag.String("store", "", "chunk storage directory (empty = in-memory)")
	ssdCache := flag.Int64("ssd-cache", 0, "fast-tier cache capacity in bytes (0 = disabled)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = disabled)")
	kvTimeout := flag.Duration("kv-timeout", 5*time.Second, "per-RPC deadline for metadata KV calls (0 = none)")
	kvRetries := flag.Int("kv-retries", 2, "extra attempts for idempotent KV reads after a transport failure (writes never retry; negative disables)")
	flag.Parse()

	if *kvAddrs == "" {
		log.Fatal("diesel-server: -kv is required")
	}
	maxRetries := *kvRetries
	if maxRetries <= 0 {
		maxRetries = -1 // Options treats 0 as "default"; negative disables
	}
	kv, err := kvstore.DialClusterOpts(strings.Split(*kvAddrs, ","), kvstore.Options{
		ConnsPerNode: 4,
		CallTimeout:  *kvTimeout,
		MaxRetries:   maxRetries,
	})
	if err != nil {
		log.Fatalf("diesel-server: %v", err)
	}

	var objects objstore.Store
	if *storeDir != "" {
		objects, err = objstore.NewDisk(*storeDir)
		if err != nil {
			log.Fatalf("diesel-server: %v", err)
		}
	} else {
		objects = objstore.NewMemory()
	}
	if *ssdCache > 0 {
		objects = objstore.NewTiered(objstore.NewMemory(), objects, *ssdCache)
	}

	core := server.New(kv, objects, func() int64 { return time.Now().UnixNano() })
	rpc, err := server.NewRPC(core, *addr)
	if err != nil {
		log.Fatalf("diesel-server: %v", err)
	}
	log.Printf("diesel-server serving on %s (kv=%s store=%q)", rpc.Addr(), *kvAddrs, *storeDir)

	if *metricsAddr != "" {
		rpc.RegisterMetrics(obs.Default())
		bound, stop, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			log.Fatalf("diesel-server: metrics: %v", err)
		}
		defer stop()
		log.Printf("diesel-server metrics on http://%s/metrics", bound)
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Printf("diesel-server: %d requests served, shutting down", rpc.Requests())
	rpc.Close()
}
