package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"diesel/internal/client"
	"diesel/internal/server"
)

// runAdmin applies live retuning to every server in -servers. Unlike the
// job roster (shared through the metadata cluster), fair-gate weights and
// tenant quotas are per-server state, so the change is pushed to each
// address and any failure is reported against its server.
func runAdmin(servers []string, callTimeout time.Duration, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: admin set-weight <job> <weight> | admin set-quota <tenant> <qps> <bytes_per_sec>")
	}
	sub, rest := args[0], args[1:]

	apply := func(desc string, f func(addr string) error) error {
		var failed []string
		for _, addr := range servers {
			addr = strings.TrimSpace(addr)
			if err := f(addr); err != nil {
				failed = append(failed, fmt.Sprintf("%s: %v", addr, err))
				continue
			}
			fmt.Printf("%s: %s\n", addr, desc)
		}
		if len(failed) > 0 {
			return fmt.Errorf("%d/%d servers failed:\n  %s",
				len(failed), len(servers), strings.Join(failed, "\n  "))
		}
		return nil
	}

	switch sub {
	case "set-weight":
		if len(rest) != 2 {
			return fmt.Errorf("usage: admin set-weight <job> <weight>")
		}
		w, err := strconv.ParseFloat(rest[1], 64)
		if err != nil {
			return fmt.Errorf("bad weight %q: %w", rest[1], err)
		}
		return apply(fmt.Sprintf("job %q fair-share weight set to %g", rest[0], w),
			func(addr string) error {
				return client.AdminSetWeight(addr, callTimeout, rest[0], w)
			})

	case "set-quota":
		if len(rest) != 3 {
			return fmt.Errorf("usage: admin set-quota <tenant> <qps> <bytes_per_sec> (0 = unlimited)")
		}
		qps, err := strconv.ParseFloat(rest[1], 64)
		if err != nil {
			return fmt.Errorf("bad qps %q: %w", rest[1], err)
		}
		bps, err := strconv.ParseFloat(rest[2], 64)
		if err != nil {
			return fmt.Errorf("bad bytes_per_sec %q: %w", rest[2], err)
		}
		q := server.TenantQuota{QPS: qps, BytesPerSec: bps}
		return apply(fmt.Sprintf("tenant %q quota set to %g qps, %g B/s", rest[0], qps, bps),
			func(addr string) error {
				return client.AdminSetQuota(addr, callTimeout, rest[0], q)
			})

	default:
		return fmt.Errorf("unknown admin subcommand %q (want set-weight or set-quota)", sub)
	}
}
