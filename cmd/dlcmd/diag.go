package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"diesel/internal/slo"
	"diesel/internal/tracing"
)

// runDiag collects diagnostic bundles — from the /debug/diag endpoints of
// running servers and kvnodes, or from a local spool directory — and
// stitches them into one tarball, correlating the traces the bundles
// captured by trace ID the way `dlcmd trace` does for live endpoints.
func runDiag(args []string) error {
	fs := flag.NewFlagSet("diag", flag.ContinueOnError)
	out := fs.String("o", "diag.tar.gz", "output tarball path")
	trigger := fs.String("trigger", "", "capture a fresh bundle on every endpoint with this reason before collecting")
	per := fs.Int("n", 1, "newest bundles to collect per endpoint (ignored with -trigger)")
	spool := fs.String("spool", "", "collect from this local spool directory instead of HTTP endpoints")
	verify := fs.Bool("verify", false, "fail unless the collection holds metrics, a slow trace and pprof profiles (CI smoke gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spool == "" && fs.NArg() < 1 {
		return fmt.Errorf("usage: diag [-o out.tar.gz] [-trigger reason] [-n per-endpoint] [-verify] <endpoint>... | diag -spool <dir>")
	}

	var bundles []*diagBundle
	if *spool != "" {
		var err error
		bundles, err = collectSpool(*spool)
		if err != nil {
			return err
		}
	} else {
		hc := &http.Client{Timeout: 30 * time.Second}
		for _, ep := range fs.Args() {
			got, err := collectEndpoint(hc, ep, *trigger, *per)
			if err != nil {
				return fmt.Errorf("diag: %s: %w", ep, err)
			}
			bundles = append(bundles, got...)
		}
	}
	if len(bundles) == 0 {
		return fmt.Errorf("no bundles collected (has the watchdog fired, or pass -trigger to capture now?)")
	}

	if err := writeStitched(*out, bundles); err != nil {
		return err
	}
	printDiagSummary(os.Stdout, *out, bundles)
	if *verify {
		return verifyBundles(bundles)
	}
	return nil
}

// diagBundle is one collected bundle, unpacked for inspection but kept
// raw for restitching.
type diagBundle struct {
	source   string
	manifest slo.Manifest
	files    map[string][]byte
}

// parseBundle unpacks a bundle tarball.
func parseBundle(source string, raw []byte) (*diagBundle, error) {
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("not a gzip bundle: %w", err)
	}
	tr := tar.NewReader(gz)
	b := &diagBundle{source: source, files: map[string][]byte{}}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, err
		}
		b.files[hdr.Name] = data
	}
	if err := json.Unmarshal(b.files["manifest.json"], &b.manifest); err != nil {
		return nil, fmt.Errorf("bundle has no readable manifest.json: %w", err)
	}
	return b, nil
}

// diagURL normalizes an endpoint ("host:port" or URL) to its /debug/diag
// base.
func diagURL(endpoint string) string {
	u := endpoint
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	if !strings.Contains(u[strings.Index(u, "://")+3:], "/") {
		u += "/debug/diag"
	}
	return u
}

// collectEndpoint lists (or triggers) and fetches bundles from one
// /debug/diag endpoint.
func collectEndpoint(hc *http.Client, endpoint, trigger string, per int) ([]*diagBundle, error) {
	base := diagURL(endpoint)

	var ids []string
	if trigger != "" {
		resp, err := hc.Post(base+"?trigger="+url.QueryEscape(trigger), "", nil)
		if err != nil {
			return nil, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("trigger returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		var t struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &t); err != nil || t.ID == "" {
			return nil, fmt.Errorf("bad trigger response %q", body)
		}
		ids = []string{t.ID}
	} else {
		resp, err := hc.Get(base)
		if err != nil {
			return nil, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("list returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		var list struct {
			Bundles []slo.BundleInfo `json:"bundles"`
		}
		if err := json.Unmarshal(body, &list); err != nil {
			return nil, err
		}
		// Newest last (IDs sort by capture time); take the tail.
		for i := len(list.Bundles) - min(per, len(list.Bundles)); i < len(list.Bundles); i++ {
			ids = append(ids, list.Bundles[i].ID)
		}
	}

	var out []*diagBundle
	for _, id := range ids {
		resp, err := hc.Get(base + "?fetch=" + url.QueryEscape(id))
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("fetch %s returned %s", id, resp.Status)
		}
		b, err := parseBundle(endpoint, raw)
		if err != nil {
			return nil, fmt.Errorf("bundle %s: %w", id, err)
		}
		out = append(out, b)
	}
	return out, nil
}

// collectSpool reads every bundle tarball in a local spool directory
// (the embedded load harness writes one; CI verifies it offline).
func collectSpool(dir string) ([]*diagBundle, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*diagBundle
	for _, ent := range ents {
		if !strings.HasSuffix(ent.Name(), ".tar.gz") || !strings.HasPrefix(ent.Name(), "bundle-") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		b, err := parseBundle(path, raw)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].manifest.ID < out[j].manifest.ID })
	return out, nil
}

// writeStitched writes every bundle's files into one tarball, namespaced
// diag/<process>-<bundle-id>/.
func writeStitched(out string, bundles []*diagBundle) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	gz := gzip.NewWriter(f)
	tw := tar.NewWriter(gz)
	now := time.Now()
	for _, b := range bundles {
		prefix := fmt.Sprintf("diag/%s-%s/", b.manifest.Process, b.manifest.ID)
		names := make([]string, 0, len(b.files))
		for name := range b.files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			data := b.files[name]
			if err := tw.WriteHeader(&tar.Header{
				Name: prefix + name, Mode: 0o644, Size: int64(len(data)), ModTime: now,
			}); err != nil {
				f.Close()
				return err
			}
			if _, err := tw.Write(data); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := tw.Close(); err != nil {
		f.Close()
		return err
	}
	if err := gz.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// traces unmarshals a bundle's trace dump (nil when absent/corrupt).
func (b *diagBundle) traces() *tracing.Dump {
	var d tracing.Dump
	if err := json.Unmarshal(b.files["traces.json"], &d); err != nil {
		return nil
	}
	return &d
}

// printDiagSummary lists what was collected and which trace IDs appear
// in more than one process — the cross-process correlation handle: feed
// any of them to `dlcmd trace -id` or look them up inside the tarball.
func printDiagSummary(w io.Writer, out string, bundles []*diagBundle) {
	fmt.Fprintf(w, "collected %d bundle(s) into %s\n", len(bundles), out)
	byTrace := make(map[uint64]map[string]bool)
	for _, b := range bundles {
		m := b.manifest
		slow := 0
		if d := b.traces(); d != nil {
			slow = len(d.Slowest)
			for _, td := range append(append([]*tracing.TraceData(nil), d.Recent...), d.Slowest...) {
				procs := byTrace[td.TraceID]
				if procs == nil {
					procs = make(map[string]bool)
					byTrace[td.TraceID] = procs
				}
				procs[m.Process] = true
			}
		}
		fmt.Fprintf(w, "  %-14s %-40s reason=%q slow-traces=%d captured=%s\n",
			m.Process, m.ID, m.Reason, slow,
			time.Unix(0, m.TimeNS).Format(time.RFC3339))
	}
	type hit struct {
		id    uint64
		procs []string
	}
	var shared []hit
	for id, procs := range byTrace {
		if len(procs) < 2 {
			continue
		}
		names := make([]string, 0, len(procs))
		for p := range procs {
			names = append(names, p)
		}
		sort.Strings(names)
		shared = append(shared, hit{id, names})
	}
	if len(shared) > 0 {
		sort.Slice(shared, func(i, j int) bool { return shared[i].id < shared[j].id })
		fmt.Fprintf(w, "traces captured by more than one process:\n")
		for _, h := range shared {
			fmt.Fprintf(w, "  %s  [%s]\n", tracing.FormatID(h.id), strings.Join(h.procs, " "))
		}
	}
}

// verifyBundles enforces the CI acceptance bar: somewhere in the
// collection there must be a non-empty metrics export, at least one
// slow trace, and goroutine+heap+CPU profiles.
func verifyBundles(bundles []*diagBundle) error {
	var haveMetrics, haveSlow, haveGoroutine, haveHeap, haveCPU bool
	for _, b := range bundles {
		var metrics []json.RawMessage
		if json.Unmarshal(b.files["metrics.json"], &metrics) == nil && len(metrics) > 0 {
			haveMetrics = true
		}
		if d := b.traces(); d != nil && len(d.Slowest) > 0 {
			haveSlow = true
		}
		if len(b.files["pprof/goroutine.pb.gz"]) > 0 {
			haveGoroutine = true
		}
		if len(b.files["pprof/heap.pb.gz"]) > 0 {
			haveHeap = true
		}
		if len(b.files["pprof/cpu.pb.gz"]) > 0 || len(b.files["pprof/cpu.SKIPPED"]) > 0 {
			haveCPU = true
		}
	}
	var missing []string
	for _, c := range []struct {
		ok   bool
		what string
	}{
		{haveMetrics, "a non-empty metrics.json"},
		{haveSlow, "at least one slow trace"},
		{haveGoroutine, "a goroutine profile"},
		{haveHeap, "a heap profile"},
		{haveCPU, "a CPU profile"},
	} {
		if !c.ok {
			missing = append(missing, c.what)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("verify failed: no bundle holds %s", strings.Join(missing, "; "))
	}
	fmt.Println("verify ok: metrics, slow trace and pprof profiles present")
	return nil
}
