// Command dlcmd manages datasets in DIESEL — the s3cmd-style tool of §5.
//
// Usage:
//
//	dlcmd -servers 127.0.0.1:7400 -dataset imagenet <command> [args]
//
// Commands:
//
//	put <local-file> <remote-path>   upload one file
//	put-dir <local-dir> [prefix]     upload a directory tree
//	get <remote-path> [local-file]   download one file (stdout by default)
//	ls [dir]                         list a directory
//	stat <remote-path>               show one file's metadata
//	rm <remote-path>                 delete one file
//	info                             dataset summary record
//	save-meta <file>                 download the metadata snapshot
//	purge                            merge chunks with deletion holes
//	recover [from-unix-seconds]      rebuild metadata from chunks (§4.1.2)
//	rm-dataset                       delete the entire dataset
//	gen <files> <mean-size>          generate a synthetic dataset
//	read-epoch [-hedge] [-reorder k] [-deadline d] [seed [group [window]]]
//	                                 stream one chunk-wise shuffled epoch
//	                                 through the pipelined reader and report
//	                                 throughput (Ctrl-C cancels cleanly);
//	                                 -hedge reissues straggling group fetches
//	                                 after an adaptive p99 delay, -reorder k
//	                                 serves the first-finished of the next k
//	                                 groups, -deadline bounds each fetch
//	                                 attempt
//	jobs                             list the live training-job roster of
//	                                 the -servers (no -dataset needed)
//	admin set-weight <job> <w>       retune a live server: fair-share
//	admin set-quota <t> <qps> <bps>  dispatch weight per job, admission
//	                                 quota per tenant (applied to every
//	                                 server in -servers; no -dataset needed)
//	stats [-watch 2s] <host:port | url> scrape a -metrics endpoint (watch: print deltas/rates)
//	cache <host:port | url>...       scrape /debug/cache endpoints: tier
//	                                 occupancy, spill-manifest summary and
//	                                 per-dataset resident bytes

//	trace [-id hex] <endpoint>...    scrape /debug/traces from one or more
//	                                 endpoints and stitch cross-process span
//	                                 trees by trace ID
//	diag [-trigger r] [-verify] <endpoint>... | diag -spool <dir>
//	                                 collect diagnostic bundles from
//	                                 /debug/diag endpoints (or a local
//	                                 spool) into one tarball, correlating
//	                                 captured traces across processes
//
// With -trace <rate> the client side records spans too: read-epoch then
// prints its slowest local traces (with trace IDs), which `dlcmd trace`
// can look up on the server endpoints for the remote half of the tree.
package main

import (
	"context"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"diesel/internal/client"
	"diesel/internal/epoch"
	"diesel/internal/trace"
	"diesel/internal/tracing"
)

func main() {
	servers := flag.String("servers", "127.0.0.1:7400", "comma-separated DIESEL server addresses")
	dataset := flag.String("dataset", "", "dataset name (required)")
	callTimeout := flag.Duration("call-timeout", 0, "per-RPC deadline (0 = none; a hung server then blocks forever)")
	retries := flag.Int("retries", 2, "extra attempts for idempotent reads after a transport failure (writes never retry; negative disables)")
	traceRate := flag.Float64("trace", 0, "trace sample rate in [0,1] (0 = tracing off)")
	flag.Parse()
	if *traceRate > 0 {
		tracing.SetProcess("dlcmd")
		tracing.SetSampleRate(*traceRate)
		tracing.EnableTracing(true)
	}
	// stats and trace talk HTTP to a -metrics endpoint, not RPC to a
	// server, so they need neither -dataset nor a client connection.
	if flag.NArg() > 0 && flag.Arg(0) == "stats" {
		if err := runStats(flag.Args()[1:]); err != nil {
			log.Fatalf("dlcmd stats: %v", err)
		}
		return
	}
	if flag.NArg() > 0 && flag.Arg(0) == "trace" {
		if err := runTrace(flag.Args()[1:]); err != nil {
			log.Fatalf("dlcmd trace: %v", err)
		}
		return
	}
	// diag scrapes /debug/diag endpoints (or a local spool), so like
	// stats/trace it needs neither -dataset nor a client connection.
	// cache scrapes /debug/cache endpoints, so it also needs neither
	// -dataset nor a client connection.
	if flag.NArg() > 0 && flag.Arg(0) == "cache" {
		if err := runCache(flag.Args()[1:]); err != nil {
			log.Fatalf("dlcmd cache: %v", err)
		}
		return
	}
	if flag.NArg() > 0 && flag.Arg(0) == "diag" {
		if err := runDiag(flag.Args()[1:]); err != nil {
			log.Fatalf("dlcmd diag: %v", err)
		}
		return
	}
	// jobs and admin are roster/server-wide, not dataset-scoped, so they
	// skip the client connection (and the -dataset requirement) and talk
	// to the servers directly.
	if flag.NArg() > 0 && flag.Arg(0) == "jobs" {
		if err := runJobs(strings.Split(*servers, ","), *callTimeout); err != nil {
			log.Fatalf("dlcmd jobs: %v", err)
		}
		return
	}
	if flag.NArg() > 0 && flag.Arg(0) == "admin" {
		if err := runAdmin(strings.Split(*servers, ","), *callTimeout, flag.Args()[1:]); err != nil {
			log.Fatalf("dlcmd admin: %v", err)
		}
		return
	}
	if *dataset == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	maxRetries := *retries
	if maxRetries <= 0 {
		maxRetries = -1 // Options treats 0 as "default"; negative disables
	}
	c, err := client.Connect(client.Options{
		User: "dlcmd", Key: "",
		Servers:     strings.Split(*servers, ","),
		Dataset:     *dataset,
		CallTimeout: *callTimeout,
		MaxRetries:  maxRetries,
	})
	if err != nil {
		log.Fatalf("dlcmd: %v", err)
	}
	defer c.Close()

	args := flag.Args()
	cmd, args := args[0], args[1:]
	if err := run(c, *dataset, cmd, args); err != nil {
		log.Fatalf("dlcmd %s: %v", cmd, err)
	}
}

// runJobs prints the job roster of the first server that answers. All
// servers of one deployment share the roster through the metadata
// cluster, so any single answer is the whole picture.
func runJobs(servers []string, callTimeout time.Duration) error {
	var lastErr error
	for _, addr := range servers {
		jobs, err := client.ListJobs(strings.TrimSpace(addr), callTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if len(jobs) == 0 {
			fmt.Println("no live jobs")
			return nil
		}
		now := time.Now()
		fmt.Printf("%-16s %-16s %-12s %5s %10s %10s\n",
			"JOB", "DATASET", "TENANT", "RANK", "AGE", "LAST-HB")
		for _, j := range jobs {
			fmt.Printf("%-16s %-16s %-12s %5d %10s %10s\n",
				j.ID, j.Dataset, j.Tenant, j.Rank,
				now.Sub(time.Unix(0, j.RegisteredNS)).Truncate(time.Second),
				now.Sub(time.Unix(0, j.HeartbeatNS)).Truncate(time.Second))
		}
		return nil
	}
	return lastErr
}

func run(c *client.Client, dataset, cmd string, args []string) error {
	switch cmd {
	case "put":
		if len(args) != 2 {
			return fmt.Errorf("usage: put <local> <remote>")
		}
		b, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		if err := c.Put(args[1], b); err != nil {
			return err
		}
		return c.Flush()

	case "put-dir":
		if len(args) < 1 {
			return fmt.Errorf("usage: put-dir <dir> [prefix]")
		}
		prefix := ""
		if len(args) > 1 {
			prefix = strings.TrimSuffix(args[1], "/") + "/"
		}
		n := 0
		err := filepath.WalkDir(args[0], func(p string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, err := filepath.Rel(args[0], p)
			if err != nil {
				return err
			}
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			n++
			return c.Put(prefix+filepath.ToSlash(rel), b)
		})
		if err != nil {
			return err
		}
		if err := c.Flush(); err != nil {
			return err
		}
		fmt.Printf("uploaded %d files\n", n)
		return nil

	case "get":
		if len(args) < 1 {
			return fmt.Errorf("usage: get <remote> [local]")
		}
		b, err := c.Get(args[0])
		if err != nil {
			return err
		}
		if len(args) > 1 {
			return os.WriteFile(args[1], b, 0o644)
		}
		_, err = os.Stdout.Write(b)
		return err

	case "ls":
		dir := ""
		if len(args) > 0 {
			dir = args[0]
		}
		ents, err := c.Ls(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if e.IsDir {
				fmt.Printf("%12s  %s/\n", "-", e.Name)
			} else {
				fmt.Printf("%12d  %s\n", e.Size, e.Name)
			}
		}
		return nil

	case "stat":
		if len(args) != 1 {
			return fmt.Errorf("usage: stat <remote>")
		}
		si, err := c.Stat(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("path:    %s\nsize:    %d\nchunk:   %s\n", args[0], si.Size, si.ChunkID)
		return nil

	case "rm":
		if len(args) != 1 {
			return fmt.Errorf("usage: rm <remote>")
		}
		return c.Delete(args[0])

	case "info":
		rec, err := c.DatasetRecord()
		if err != nil {
			return err
		}
		fmt.Printf("dataset: %s\nfiles:   %d\nchunks:  %d\nbytes:   %d\nupdated: %s\n",
			dataset, rec.FileCount, rec.ChunkCount, rec.TotalBytes,
			time.Unix(0, rec.UpdatedNS).Format(time.RFC3339))
		return nil

	case "save-meta":
		if len(args) != 1 {
			return fmt.Errorf("usage: save-meta <file>")
		}
		if err := c.SaveMeta(args[0]); err != nil {
			return err
		}
		fmt.Printf("snapshot saved to %s\n", args[0])
		return nil

	case "purge":
		return c.Purge()

	case "recover":
		fromSec := uint32(0)
		if len(args) > 0 {
			v, err := strconv.ParseUint(args[0], 10, 32)
			if err != nil {
				return fmt.Errorf("recover: bad timestamp %q", args[0])
			}
			fromSec = uint32(v)
		}
		scanned, skipped, pairs, err := c.Recover(fromSec)
		if err != nil {
			return err
		}
		fmt.Printf("recovered: %d chunks scanned, %d skipped, %d metadata pairs rewritten\n",
			scanned, skipped, pairs)
		return nil

	case "rm-dataset":
		return c.DeleteDataset()

	case "read-epoch":
		fs := flag.NewFlagSet("read-epoch", flag.ContinueOnError)
		hedge := fs.Bool("hedge", false, "hedge straggling group fetches (reissue after the adaptive p99 delay, first success wins)")
		reorder := fs.Int("reorder", 0, "serve whichever of the next k prefetched groups finished first (0 = exact plan order)")
		deadline := fs.Duration("deadline", 0, "per-group-fetch attempt timeout (0 = none)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		rest := fs.Args()
		seed, group, window := int64(1), 8, 2
		if len(rest) > 0 {
			v, err := strconv.ParseInt(rest[0], 10, 64)
			if err != nil {
				return fmt.Errorf("read-epoch: bad seed %q", rest[0])
			}
			seed = v
		}
		if len(rest) > 1 {
			v, err := strconv.Atoi(rest[1])
			if err != nil {
				return fmt.Errorf("read-epoch: bad group size %q", rest[1])
			}
			group = v
		}
		if len(rest) > 2 {
			v, err := strconv.Atoi(rest[2])
			if err != nil {
				return fmt.Errorf("read-epoch: bad window %q", rest[2])
			}
			window = v
		}
		return readEpoch(c, seed, group, window, *hedge, *reorder, *deadline)

	case "gen":
		if len(args) != 2 {
			return fmt.Errorf("usage: gen <files> <mean-size>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		sz, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		spec := trace.Spec{
			Name: dataset, NumFiles: n, Classes: max(1, n/50),
			MeanFileSize: sz, SizeSpread: 0.4, Seed: 11,
		}
		start := time.Now()
		if err := trace.Write(spec, func(int) (trace.Putter, error) { return c, nil }, 1); err != nil {
			return err
		}
		fmt.Printf("generated %d files (%d bytes) in %v\n", n, spec.TotalBytes(), time.Since(start))
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// readEpoch streams one shuffled epoch through the pipelined reader,
// fetching whole chunks from the servers, and reports throughput.
// Interrupting cancels the context, which unwinds every in-flight RPC.
// hedge/reorder/deadline switch on the reader's tail-latency controls;
// hedged reissues go through the same servers with a fresh context.
func readEpoch(c *client.Client, seed int64, group, window int, hedge bool, reorder int, deadline time.Duration) error {
	snap, err := c.DownloadSnapshot()
	if err != nil {
		return err
	}
	plan, err := c.ShufflePlan(seed, group)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := []epoch.Option{
		epoch.WithWindow(window), epoch.WithContext(ctx),
	}
	if hedge {
		opts = append(opts, epoch.WithHedge(nil))
	}
	if reorder > 0 {
		opts = append(opts, epoch.WithReorderWindow(reorder))
	}
	if deadline > 0 {
		opts = append(opts, epoch.WithGroupDeadline(deadline))
	}
	r := epoch.NewReader(plan, snap, epoch.NewClientSource(c.DefaultDataset(), snap, 0), opts...)
	defer r.Close()
	start := time.Now()
	files, bytes := 0, uint64(0)
	for {
		s, err := r.Next()
		if err != nil {
			break
		}
		files++
		bytes += uint64(len(s.Data))
	}
	el := time.Since(start)
	if err := r.Err(); err != nil {
		return fmt.Errorf("after %d files: %w", files, err)
	}
	fmt.Printf("epoch: %d files, %d bytes in %v (%.0f files/s, %.1f MB/s, %d groups, window %d)\n",
		files, bytes, el.Round(time.Millisecond),
		float64(files)/el.Seconds(), float64(bytes)/el.Seconds()/1e6,
		len(plan.Groups), window)
	printLocalTraces()
	return nil
}

// printLocalTraces shows the client-side half of the slowest traces this
// run recorded (when -trace is on). The printed IDs are what to pass to
// `dlcmd trace -id <id> <server-metrics-endpoint> <kvnode-endpoints...>`
// to see the server-side spans of the same traces.
func printLocalTraces() {
	if !tracing.Enabled() {
		return
	}
	slowest := tracing.Slowest(3)
	if len(slowest) == 0 {
		// Nothing crossed the slow threshold; show the last few anyway.
		slowest = tracing.Recent(3)
	}
	if len(slowest) == 0 {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\nslowest client-side traces (%d collected; dlcmd trace -id <id> <endpoints> for the server half):\n", tracing.CollectedTotal())
	for _, td := range slowest {
		fmt.Fprintf(&b, "\n%s  %s  %v  (%d spans)\n",
			tracing.FormatID(td.TraceID), td.Root, td.Duration().Round(time.Microsecond), len(td.Spans))
		tracing.WriteTree(&b, td.Spans)
	}
	fmt.Print(b.String())
}
