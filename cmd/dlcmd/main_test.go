package main

import (
	"os"
	"path/filepath"
	"testing"

	"diesel/internal/client"
	"diesel/internal/core"
)

func testClient(t *testing.T) *client.Client {
	t.Helper()
	dep, err := core.Deploy(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Close)
	c, err := dep.NewClient("ds", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDlcmdPutGetStatLsRm(t *testing.T) {
	c := testClient(t)
	dir := t.TempDir()
	local := filepath.Join(dir, "hello.txt")
	if err := os.WriteFile(local, []byte("hello diesel"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run(c, "ds", "put", []string{local, "docs/hello.txt"}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.txt")
	if err := run(c, "ds", "get", []string{"docs/hello.txt", out}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil || string(b) != "hello diesel" {
		t.Fatalf("round trip = %q, %v", b, err)
	}
	if err := run(c, "ds", "stat", []string{"docs/hello.txt"}); err != nil {
		t.Fatal(err)
	}
	if err := run(c, "ds", "ls", []string{"docs"}); err != nil {
		t.Fatal(err)
	}
	if err := run(c, "ds", "info", nil); err != nil {
		t.Fatal(err)
	}
	if err := run(c, "ds", "rm", []string{"docs/hello.txt"}); err != nil {
		t.Fatal(err)
	}
	if err := run(c, "ds", "get", []string{"docs/hello.txt", out}); err == nil {
		t.Fatal("get after rm succeeded")
	}
}

func TestDlcmdPutDir(t *testing.T) {
	c := testClient(t)
	dir := t.TempDir()
	os.MkdirAll(filepath.Join(dir, "sub"), 0o755)
	os.WriteFile(filepath.Join(dir, "a.bin"), []byte("a"), 0o644)
	os.WriteFile(filepath.Join(dir, "sub", "b.bin"), []byte("b"), 0o644)

	if err := run(c, "ds", "put-dir", []string{dir, "up"}); err != nil {
		t.Fatal(err)
	}
	b, err := c.Get("up/sub/b.bin")
	if err != nil || string(b) != "b" {
		t.Fatalf("uploaded tree: %q, %v", b, err)
	}
}

func TestDlcmdGenSaveMetaPurge(t *testing.T) {
	c := testClient(t)
	if err := run(c, "ds", "gen", []string{"50", "256"}); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "ds.snap")
	if err := run(c, "ds", "save-meta", []string{snap}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatal("snapshot file missing")
	}
	if err := run(c, "ds", "purge", nil); err != nil {
		t.Fatal(err)
	}
	if err := run(c, "ds", "rm-dataset", nil); err != nil {
		t.Fatal(err)
	}
	if err := run(c, "ds", "info", nil); err == nil {
		t.Fatal("info after rm-dataset succeeded")
	}
}

func TestDlcmdErrors(t *testing.T) {
	c := testClient(t)
	for _, tc := range []struct {
		cmd  string
		args []string
	}{
		{"put", []string{"only-one"}},
		{"get", nil},
		{"stat", nil},
		{"rm", nil},
		{"save-meta", nil},
		{"gen", []string{"x", "y"}},
		{"no-such-command", nil},
	} {
		if err := run(c, "ds", tc.cmd, tc.args); err == nil {
			t.Errorf("%s %v: expected error", tc.cmd, tc.args)
		}
	}
}

func TestDlcmdRecover(t *testing.T) {
	dep, err := core.Deploy(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Close)
	c, err := dep.NewClient("ds", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := run(c, "ds", "gen", []string{"30", "128"}); err != nil {
		t.Fatal(err)
	}
	for _, kv := range dep.KVServers() {
		kv.Wipe()
	}
	if err := run(c, "ds", "recover", nil); err != nil {
		t.Fatal(err)
	}
	if err := run(c, "ds", "info", nil); err != nil {
		t.Fatalf("info after recover: %v", err)
	}
	if err := run(c, "ds", "recover", []string{"not-a-number"}); err == nil {
		t.Fatal("bad timestamp accepted")
	}
}
