package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"diesel/internal/tracing"
)

// runTrace scrapes /debug/traces?format=json from one or more -metrics
// endpoints (diesel-server, kvnode, or anything serving the obs mux) and
// stitches the spans that share a trace ID into one cross-process tree.
// Each process only holds its own spans; the parent links written into the
// wire trace block are what joins them back together here.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	id := fs.String("id", "", "show only this trace ID (hex)")
	n := fs.Int("n", 5, "traces to show (slowest first)")
	per := fs.Int("per", 32, "traces to fetch per endpoint list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: trace [-id <hex>] [-n count] <host:port | url> [more endpoints...]")
	}

	merged := make(map[uint64]*mergedTrace)
	hc := &http.Client{Timeout: 5 * time.Second}
	for _, ep := range fs.Args() {
		d, err := fetchDump(hc, ep, *id, *per)
		if err != nil {
			return fmt.Errorf("trace: %s: %w", ep, err)
		}
		for _, td := range d {
			m := merged[td.TraceID]
			if m == nil {
				m = &mergedTrace{id: td.TraceID}
				merged[td.TraceID] = m
			}
			m.add(td)
		}
	}
	if len(merged) == 0 {
		fmt.Println("no traces collected (is tracing enabled on the endpoints?)")
		return nil
	}

	all := make([]*mergedTrace, 0, len(merged))
	for _, m := range merged {
		all = append(all, m)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].duration() > all[j].duration() })
	if *id == "" && len(all) > *n {
		all = all[:*n]
	}
	var b strings.Builder
	for _, m := range all {
		fmt.Fprintf(&b, "trace %s  %v  root=%s  processes=[%s]  (%d spans)\n",
			tracing.FormatID(m.id), m.duration().Round(time.Microsecond),
			m.root(), strings.Join(m.processes(), " "), len(m.spans))
		tracing.WriteTree(&b, m.spans)
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
	return nil
}

// fetchDump pulls one endpoint's traces. With an id filter the handler's
// id= form is used; otherwise both the recent and slowest lists are taken.
func fetchDump(hc *http.Client, endpoint, id string, per int) ([]*tracing.TraceData, error) {
	url := endpoint
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(url[strings.Index(url, "://")+3:], "/") {
		url += "/debug/traces"
	}
	url += fmt.Sprintf("?format=json&n=%d", per)
	if id != "" {
		url += "&id=" + id
	}
	resp, err := hc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if id != "" && resp.StatusCode == http.StatusNotFound {
		// This process never collected the trace — normal when stitching
		// across endpoints; the other processes may still have it.
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s returned %s", url, resp.Status)
	}
	if id != "" {
		var d struct {
			Traces []*tracing.TraceData `json:"traces"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			return nil, err
		}
		return d.Traces, nil
	}
	var d tracing.Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, err
	}
	return append(d.Recent, d.Slowest...), nil
}

// mergedTrace accumulates one trace's spans across process dumps.
type mergedTrace struct {
	id    uint64
	spans []tracing.SpanData
	seen  map[uint64]bool // span IDs already merged (recent∩slowest overlap)
}

func (m *mergedTrace) add(td *tracing.TraceData) {
	if m.seen == nil {
		m.seen = make(map[uint64]bool)
	}
	for _, s := range td.Spans {
		if m.seen[s.SpanID] {
			continue
		}
		m.seen[s.SpanID] = true
		m.spans = append(m.spans, s)
	}
}

func (m *mergedTrace) duration() time.Duration {
	var lo, hi int64
	for i, s := range m.spans {
		if i == 0 || s.StartNS < lo {
			lo = s.StartNS
		}
		if end := s.StartNS + s.DurNS; end > hi {
			hi = end
		}
	}
	return time.Duration(hi - lo)
}

// root names the span whose parent is absent from the merged set — the
// true root when every process contributed, the earliest orphan otherwise.
func (m *mergedTrace) root() string {
	ids := make(map[uint64]bool, len(m.spans))
	for _, s := range m.spans {
		ids[s.SpanID] = true
	}
	best := ""
	var bestStart int64
	for _, s := range m.spans {
		if s.ParentID != 0 && ids[s.ParentID] {
			continue
		}
		if best == "" || s.StartNS < bestStart {
			best, bestStart = s.Name, s.StartNS
		}
	}
	return best
}

func (m *mergedTrace) processes() []string {
	set := make(map[string]bool)
	for _, s := range m.spans {
		set[s.Process] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
