package main

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"diesel/internal/obs"
)

// runStats scrapes a /metrics endpoint (diesel-server or kvnode started
// with -metrics) and pretty-prints it: counters and gauges as plain
// values, histograms as count/mean/p50/p95/p99. It needs no -dataset and
// no DIESEL connection — just HTTP reachability to the metrics address.
func runStats(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: stats <host:port | url>")
	}
	url := args[0]
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(url[strings.Index(url, "://")+3:], "/") {
		url += "/metrics"
	}
	hc := &http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats: %s returned %s", url, resp.Status)
	}
	sc, err := obs.ParseText(resp.Body)
	if err != nil {
		return err
	}
	// Alphabetical within each section: stable diffs between scrapes.
	sort.SliceStable(sc.Samples, func(i, j int) bool {
		a, b := sc.Samples[i], sc.Samples[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return fmtLabels(a.Labels) < fmtLabels(b.Labels)
	})
	sort.SliceStable(sc.Histograms, func(i, j int) bool {
		a, b := sc.Histograms[i], sc.Histograms[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return fmtLabels(a.Labels) < fmtLabels(b.Labels)
	})

	if len(sc.Samples) > 0 {
		fmt.Println("# counters and gauges")
		for _, s := range sc.Samples {
			fmt.Printf("%-64s %g\n", s.Name+fmtLabels(s.Labels), s.Value)
		}
	}
	if len(sc.Histograms) > 0 {
		fmt.Println("# histograms (count / mean / p50 / p95 / p99)")
		for _, h := range sc.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / h.Count
			}
			fmt.Printf("%-64s n=%-8g mean=%-11s p50=%-11s p95=%-11s p99=%s\n",
				h.Name+fmtLabels(h.Labels), h.Count,
				fmtQuantity(h.Name, mean),
				fmtQuantity(h.Name, h.Quantile(0.50)),
				fmtQuantity(h.Name, h.Quantile(0.95)),
				fmtQuantity(h.Name, h.Quantile(0.99)))
		}
	}
	return nil
}

func fmtLabels(m map[string]string) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, m[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// fmtQuantity renders seconds-unit histogram values as durations and
// everything else (batch sizes, byte counts) as plain numbers.
func fmtQuantity(name string, v float64) string {
	if strings.HasSuffix(name, "_seconds") {
		return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%g", v)
}
