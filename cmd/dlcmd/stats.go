package main

import (
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"diesel/internal/obs"
)

// runStats scrapes a /metrics endpoint (diesel-server or kvnode started
// with -metrics) and pretty-prints it: counters and gauges as plain
// values, histograms as count/mean/p50/p95/p99. It needs no -dataset and
// no DIESEL connection — just HTTP reachability to the metrics address.
// With -watch it re-scrapes on an interval and prints what moved:
// counter deltas as rates, and histogram quantiles computed over just
// the interval's observations (cumulative buckets diffed between
// scrapes), which is what you want while watching a load test or a
// fault window in real time.
func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	watch := fs.Duration("watch", 0, "re-scrape every interval and print deltas and rates (0 = one shot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: stats [-watch interval] <host:port | url>")
	}
	url := fs.Arg(0)
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(url[strings.Index(url, "://")+3:], "/") {
		url += "/metrics"
	}
	if *watch > 0 {
		return watchStats(url, *watch)
	}
	sc, err := scrapeStats(url)
	if err != nil {
		return err
	}
	// Alphabetical within each section: stable diffs between scrapes.
	sort.SliceStable(sc.Samples, func(i, j int) bool {
		a, b := sc.Samples[i], sc.Samples[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return fmtLabels(a.Labels) < fmtLabels(b.Labels)
	})
	sort.SliceStable(sc.Histograms, func(i, j int) bool {
		a, b := sc.Histograms[i], sc.Histograms[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return fmtLabels(a.Labels) < fmtLabels(b.Labels)
	})

	if len(sc.Samples) > 0 {
		fmt.Println("# counters and gauges")
		for _, s := range sc.Samples {
			fmt.Printf("%-64s %g\n", s.Name+fmtLabels(s.Labels), s.Value)
		}
	}
	if len(sc.Histograms) > 0 {
		fmt.Println("# histograms (count / mean / p50 / p95 / p99)")
		for _, h := range sc.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / h.Count
			}
			fmt.Printf("%-64s n=%-8g mean=%-11s p50=%-11s p95=%-11s p99=%s\n",
				h.Name+fmtLabels(h.Labels), h.Count,
				fmtQuantity(h.Name, mean),
				fmtQuantity(h.Name, h.Quantile(0.50)),
				fmtQuantity(h.Name, h.Quantile(0.95)),
				fmtQuantity(h.Name, h.Quantile(0.99)))
		}
	}
	return nil
}

// scrapeStats fetches and parses one /metrics exposition.
func scrapeStats(url string) (*obs.Scrape, error) {
	hc := &http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: %s returned %s", url, resp.Status)
	}
	return obs.ParseText(resp.Body)
}

// watchStats scrapes url every interval and prints only what moved since
// the previous scrape. Runs until interrupted.
func watchStats(url string, interval time.Duration) error {
	prev, err := scrapeStats(url)
	if err != nil {
		return err
	}
	fmt.Printf("watching %s every %v (deltas per interval; ctrl-c to stop)\n", url, interval)
	for {
		time.Sleep(interval)
		cur, err := scrapeStats(url)
		if err != nil {
			// A restarting server shouldn't kill the watch; report and
			// retry with the old baseline.
			fmt.Printf("-- scrape failed: %v\n", err)
			continue
		}
		printDelta(prev, cur, interval)
		prev = cur
	}
}

func sampleKey(name string, labels map[string]string) string {
	return name + fmtLabels(labels)
}

func printDelta(prev, cur *obs.Scrape, interval time.Duration) {
	secs := interval.Seconds()
	fmt.Printf("-- %s\n", time.Now().Format("15:04:05"))

	prevSamples := make(map[string]obs.Sample, len(prev.Samples))
	for _, s := range prev.Samples {
		prevSamples[sampleKey(s.Name, s.Labels)] = s
	}
	lines := 0
	sorted := append([]obs.Sample(nil), cur.Samples...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sampleKey(sorted[i].Name, sorted[i].Labels) < sampleKey(sorted[j].Name, sorted[j].Labels)
	})
	for _, s := range sorted {
		key := sampleKey(s.Name, s.Labels)
		p, ok := prevSamples[key]
		if ok && s.Value == p.Value {
			continue
		}
		if cur.Types[s.Name] == "counter" {
			d := s.Value - p.Value
			fmt.Printf("%-64s +%-12g %8.1f/s\n", key, d, d/secs)
		} else {
			// Gauges show the new level, not a rate.
			fmt.Printf("%-64s %-13g (was %g)\n", key, s.Value, p.Value)
		}
		lines++
	}

	prevHists := make(map[string]*obs.ScrapedHistogram, len(prev.Histograms))
	for _, h := range prev.Histograms {
		prevHists[sampleKey(h.Name, h.Labels)] = h
	}
	for _, h := range cur.Histograms {
		key := sampleKey(h.Name, h.Labels)
		p := prevHists[key]
		if p == nil {
			p = &obs.ScrapedHistogram{}
		}
		dn := h.Count - p.Count
		if dn <= 0 {
			continue
		}
		iv := intervalHistogram(p, h)
		mean := 0.0
		if iv.Count > 0 {
			mean = iv.Sum / iv.Count
		}
		fmt.Printf("%-64s n+=%-10g %8.1f/s mean=%-11s p50=%-11s p99=%s\n",
			key, dn, dn/secs,
			fmtQuantity(h.Name, mean),
			fmtQuantity(h.Name, iv.Quantile(0.50)),
			fmtQuantity(h.Name, iv.Quantile(0.99)))
		lines++
	}
	if lines == 0 {
		fmt.Println("(no change)")
	}
}

// intervalHistogram subtracts the previous scrape's cumulative buckets
// from the current ones, yielding the histogram of just the interval's
// observations. A missing or reset previous histogram (count went down —
// e.g. the process restarted) degrades to the current cumulative state.
func intervalHistogram(prev, cur *obs.ScrapedHistogram) *obs.ScrapedHistogram {
	if prev.Count == 0 || prev.Count > cur.Count || len(prev.Buckets) != len(cur.Buckets) {
		return cur
	}
	iv := &obs.ScrapedHistogram{
		Name:   cur.Name,
		Labels: cur.Labels,
		Count:  cur.Count - prev.Count,
		Sum:    cur.Sum - prev.Sum,
	}
	iv.Buckets = make([]obs.BucketPoint, len(cur.Buckets))
	for i, b := range cur.Buckets {
		iv.Buckets[i] = obs.BucketPoint{LE: b.LE, Cum: b.Cum - prev.Buckets[i].Cum}
	}
	return iv
}

func fmtLabels(m map[string]string) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, m[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// fmtQuantity renders seconds-unit histogram values as durations and
// everything else (batch sizes, byte counts) as plain numbers.
func fmtQuantity(name string, v float64) string {
	if strings.HasSuffix(name, "_seconds") {
		return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%g", v)
}
