package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"diesel/internal/server"
)

// runCache scrapes one or more /debug/cache endpoints (diesel-server
// started with -metrics and -ssd-cache) and pretty-prints each server's
// tier occupancy: fast-tier bytes and hit rate, the spill tier's
// manifest summary, and per-dataset resident bytes across both tiers.
// Like stats/trace/diag it talks HTTP to the metrics address, so it
// needs neither -dataset nor a DIESEL connection.
func runCache(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: cache <host:port | url>...")
	}
	var lastErr error
	for i, arg := range args {
		if i > 0 {
			fmt.Println()
		}
		if err := printCache(arg); err != nil {
			fmt.Printf("%s: %v\n", arg, err)
			lastErr = err
		}
	}
	return lastErr
}

// cacheURL normalizes "host:port" to the /debug/cache endpoint URL.
func cacheURL(arg string) string {
	url := arg
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(url[strings.Index(url, "://")+3:], "/") {
		url += "/debug/cache"
	}
	return url
}

func printCache(arg string) error {
	url := cacheURL(arg)
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var cd server.CacheDebug
	if err := json.Unmarshal(body, &cd); err != nil {
		return fmt.Errorf("bad /debug/cache body: %w", err)
	}

	fmt.Printf("%s\n", url)
	total := cd.FastHits + cd.FastMisses
	rate := 0.0
	if total > 0 {
		rate = float64(cd.FastHits) / float64(total)
	}
	fmt.Printf("fast tier:  %12d bytes   hits=%d misses=%d (%.1f%% hit rate)\n",
		cd.FastBytes, cd.FastHits, cd.FastMisses, 100*rate)
	sp := cd.Spill
	if !sp.Enabled {
		fmt.Println("spill tier: disabled")
	} else {
		fmt.Printf("spill tier: %12d bytes   %d objects in %d segments (%d bytes on disk)\n",
			sp.Bytes, sp.Entries, sp.Segments, sp.DiskBytes)
		fmt.Printf("            hits=%d demotions=%d dropped=%d rewarmed=%d (%d bytes)\n",
			sp.Hits, sp.Demotions, sp.Dropped, sp.RewarmEntries, sp.RewarmBytes)
	}
	if len(cd.Datasets) > 0 {
		names := make([]string, 0, len(cd.Datasets))
		for ds := range cd.Datasets {
			names = append(names, ds)
		}
		sort.Strings(names)
		fmt.Printf("%-24s %14s %14s\n", "DATASET", "FAST-BYTES", "SPILL-BYTES")
		for _, ds := range names {
			tb := cd.Datasets[ds]
			fmt.Printf("%-24s %14d %14d\n", ds, tb.FastBytes, tb.SpillBytes)
		}
	}
	return nil
}
