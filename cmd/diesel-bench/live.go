package main

import (
	"fmt"
	"log"

	"diesel/internal/client"
	"diesel/internal/cluster"
	"diesel/internal/core"
	"diesel/internal/dcache"
	"diesel/internal/epoch"
	"diesel/internal/obs"
)

// live drives a real in-process DIESEL stack — KV nodes, an RPC server
// with a tiered store, and a 2×2 DLT task with the distributed cache —
// through a write phase and two read epochs. Unlike the simulator-backed
// figures, every layer's instrumentation fires, so the registry snapshot
// -json writes afterwards carries nonzero cache hit-rates and RPC tail
// latencies alongside the figures' modeled numbers.
func live(cluster.Params) {
	fmt.Println("== live: real in-process stack (metrics for the -json snapshot) ==")
	dep, err := core.Deploy(core.Config{KVNodes: 2, SSDCacheBytes: 32 << 20})
	if err != nil {
		log.Fatalf("live: deploy: %v", err)
	}
	defer dep.Close()
	dep.Server().RegisterMetrics(obs.Default())

	const (
		dataset  = "bench-live"
		numFiles = 240
		fileSize = 4 << 10
	)
	// A small chunk target spreads the dataset over many chunks so the
	// task's masters each own several and peer reads actually happen.
	wcl, err := client.Connect(client.Options{
		User: "bench", Servers: dep.ServerAddrs(), Dataset: dataset,
		ChunkTarget: 64 << 10,
	})
	if err != nil {
		log.Fatalf("live: connect: %v", err)
	}
	payload := make([]byte, fileSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	paths := make([]string, numFiles)
	for i := range numFiles {
		paths[i] = fmt.Sprintf("cls%02d/img%04d.jpg", i%8, i)
		if err := wcl.Put(paths[i], payload); err != nil {
			log.Fatalf("live: put: %v", err)
		}
	}
	if err := wcl.Flush(); err != nil {
		log.Fatalf("live: flush: %v", err)
	}

	// One batched read against the request executor, then two cached
	// epochs through the task-grained distributed cache.
	if _, err := wcl.GetBatch(paths[:64]); err != nil {
		log.Fatalf("live: getbatch: %v", err)
	}
	wcl.Close()

	task, err := dep.StartTask(core.TaskConfig{
		Dataset: dataset, Nodes: 2, ClientsPerNode: 2, Policy: dcache.Oneshot,
	})
	if err != nil {
		log.Fatalf("live: start task: %v", err)
	}
	// Epoch 0: each client reads its rank's stripe of the shuffled order,
	// as a DLT data loader would, filling the cache.
	for rank, cl := range task.Clients {
		plan, err := cl.ShufflePlan(int64(rank), 4)
		if err != nil {
			log.Fatalf("live: shuffle: %v", err)
		}
		order := plan.Paths(cl.Snapshot())
		for i := rank; i < len(order); i += len(task.Clients) {
			if _, err := cl.Get(order[i]); err != nil {
				log.Fatalf("live: get %s: %v", order[i], err)
			}
		}
	}
	// Epoch 1: one client streams the whole reshuffled epoch through the
	// pipelined reader over the warm cache (diesel_epoch_* metrics fire).
	{
		cl := task.Clients[0]
		plan, err := cl.ShufflePlan(int64(len(task.Clients)), 4)
		if err != nil {
			log.Fatalf("live: shuffle: %v", err)
		}
		snap := cl.Snapshot()
		r := epoch.NewReader(plan, snap, epoch.NewCacheSource(task.Peers[0], snap, 0),
			epoch.WithWindow(2))
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
		r.Close()
		if err := r.Err(); err != nil {
			log.Fatalf("live: epoch read: %v", err)
		}
	}

	var local, peer, fallback uint64
	for _, p := range task.Peers {
		local += p.Stats.LocalHits.Load()
		peer += p.Stats.PeerReads.Load()
		fallback += p.Stats.ServerFallback.Load()
	}
	task.Close()
	fmt.Printf("%-26s %d files × %d B over %d masters\n", "dataset", numFiles, fileSize, 2)
	fmt.Printf("%-26s local=%d peer=%d server-fallback=%d\n", "cache reads", local, peer, fallback)
	fmt.Printf("%-26s %.3f\n", "ssd-tier hit rate", dep.Tiered().HitRate())
	for _, m := range obs.Default().Export() {
		if m.Name == "diesel_client_get_seconds" {
			fmt.Printf("%-26s n=%d p50=%.0fµs p95=%.0fµs p99=%.0fµs\n",
				"DL_get service time", m.Count, m.P50*1e6, m.P95*1e6, m.P99*1e6)
		}
	}
	// These loops are closed: each worker issues its next read only after
	// the previous one returns, so the numbers above are service times —
	// a stalled server would slow the loop down rather than widen the
	// recorded tail (coordinated omission). For tail latency under a
	// fixed offered rate, run `diesel-bench -exp open-loop` or the full
	// cmd/diesel-load harness.
	fmt.Println("(closed-loop run: latencies are service-time-only, not open-loop tails)")
}
