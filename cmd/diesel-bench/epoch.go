package main

import (
	"fmt"
	"log"
	"time"

	"diesel/internal/client"
	"diesel/internal/cluster"
	"diesel/internal/core"
	"diesel/internal/epoch"
	"diesel/internal/objstore"
)

// epochExp compares the synchronous and pipelined epoch readers on a real
// in-process stack whose object store models HDD-class request latency —
// the wall-clock effect of overlapping group fetches with consumption
// (the pipelining §6.6 attributes the sustained training throughput to).
func epochExp(cluster.Params) {
	fmt.Println("== epoch: pipelined reader vs synchronous, real stack over a 2 ms-latency store ==")
	dep, err := core.Deploy(core.Config{
		Throttle: &objstore.Throttled{Latency: 2 * time.Millisecond},
	})
	if err != nil {
		log.Fatalf("epoch: deploy: %v", err)
	}
	defer dep.Close()

	const (
		dataset  = "bench-epoch"
		numFiles = 512
		fileSize = 4 << 10
	)
	wcl, err := client.Connect(client.Options{
		User: "bench", Servers: dep.ServerAddrs(), Dataset: dataset,
		ChunkTarget: 16 << 10, // ~4 files per chunk: many groups to pipeline
	})
	if err != nil {
		log.Fatalf("epoch: connect: %v", err)
	}
	payload := make([]byte, fileSize)
	for i := range numFiles {
		if err := wcl.Put(fmt.Sprintf("cls%02d/img%04d.jpg", i%8, i), payload); err != nil {
			log.Fatalf("epoch: put: %v", err)
		}
	}
	if err := wcl.Flush(); err != nil {
		log.Fatalf("epoch: flush: %v", err)
	}
	wcl.Close()

	cl, err := client.Connect(client.Options{
		User: "bench", Servers: dep.ServerAddrs(), Dataset: dataset,
	})
	if err != nil {
		log.Fatalf("epoch: connect: %v", err)
	}
	defer cl.Close()
	snap, err := cl.DownloadSnapshot()
	if err != nil {
		log.Fatalf("epoch: snapshot: %v", err)
	}

	fmt.Printf("%-10s %12s %12s %10s\n", "window", "epoch time", "files/s", "MB/s")
	var base time.Duration
	for _, window := range []int{0, 2, 4} {
		plan, err := cl.ShufflePlan(int64(window), 4)
		if err != nil {
			log.Fatalf("epoch: shuffle: %v", err)
		}
		r := epoch.NewReader(plan, snap, epoch.NewClientSource(cl.DefaultDataset(), snap, 4),
			epoch.WithWindow(window))
		start := time.Now()
		files, bytes := 0, 0
		for {
			s, err := r.Next()
			if err != nil {
				break
			}
			files++
			bytes += len(s.Data)
		}
		el := time.Since(start)
		r.Close()
		if err := r.Err(); err != nil {
			log.Fatalf("epoch: window %d: %v", window, err)
		}
		if files != numFiles {
			log.Fatalf("epoch: window %d served %d of %d files", window, files, numFiles)
		}
		note := ""
		if window == 0 {
			base = el
		} else if base > 0 {
			note = fmt.Sprintf("  (%.1fx vs window=0)", float64(base)/float64(el))
		}
		fmt.Printf("%-10d %12v %12.0f %10.1f%s\n", window, el.Round(time.Millisecond),
			float64(files)/el.Seconds(), float64(bytes)/el.Seconds()/1e6, note)
	}
}
