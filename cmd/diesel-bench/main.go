// Command diesel-bench regenerates every table and figure of the paper's
// evaluation (§6) and prints the same rows/series the paper plots.
//
// Usage:
//
//	diesel-bench -exp table2     # Table 2: read bandwidth vs file size
//	diesel-bench -exp fig6       # Memcached collapse under node failure
//	diesel-bench -exp fig9       # write throughput comparison
//	diesel-bench -exp fig10a     # metadata QPS vs client nodes
//	diesel-bench -exp fig10b     # snapshot metadata QPS (linear)
//	diesel-bench -exp fig10c     # ls -R / ls -lR elapsed time
//	diesel-bench -exp fig11a     # 4KB random read QPS
//	diesel-bench -exp fig11b     # cache loading/recovery time
//	diesel-bench -exp fig12      # read bandwidth with chunk-wise shuffle
//	diesel-bench -exp fig13      # shuffle quality: accuracy per epoch
//	diesel-bench -exp fig14      # per-iteration data access time
//	diesel-bench -exp fig15      # total training time comparison
//	diesel-bench -exp epoch      # pipelined vs synchronous epoch reader
//	diesel-bench -exp alloc      # allocs/op + B/op on the hot read paths
//	diesel-bench -exp open-loop  # CO-safe fixed-rate tails (internal/loadgen)
//	diesel-bench -exp tail       # hedged epoch reads vs 1-in-50 slow store reads
//	diesel-bench -exp spill      # two-level dcache: spill tier vs refetch, warm restart
//	diesel-bench -exp all
//
// The real-stack experiments drive their loops closed (each worker reads
// back-to-back), so their latency rows are service times; "open-loop"
// delegates to the internal/loadgen harness, whose intended-start
// measurement keeps server stalls visible in the tail.
//
// Performance experiments run on the deterministic cluster simulator
// calibrated in internal/cluster (see DESIGN.md §2 for the substitution
// rationale); fig13 trains a real model with real SGD.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"diesel/internal/cluster"
	"diesel/internal/obs"
	"diesel/internal/train"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table2, fig6, fig9, fig10a, fig10b, fig10c, fig11a, fig11b, fig12, fig13, fig14, fig15, ablation-group, live, epoch, alloc, open-loop, tail, spill, all)")
	jsonDir := flag.String("json", "", "directory to write a BENCH_<exp>.json metrics snapshot after each experiment (empty = disabled)")
	flag.Parse()

	runs := map[string]func(cluster.Params){
		"table2": table2, "fig6": fig6, "fig9": fig9,
		"fig10a": fig10a, "fig10b": fig10b, "fig10c": fig10c,
		"fig11a": fig11a, "fig11b": fig11b, "fig12": fig12,
		"fig13": fig13, "fig14": fig14, "fig15": fig15,
		"ablation-group": ablationGroup, "ablation-topology": ablationTopology,
		"live": live, "epoch": epochExp, "alloc": allocExp,
		"open-loop": openLoop, "tail": tailExp, "spill": spillExp,
	}
	p := cluster.Default()
	if *exp == "all" {
		names := make([]string, 0, len(runs))
		for n := range runs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			runs[n](p)
			writeSnapshot(*jsonDir, n)
			fmt.Println()
		}
		return
	}
	fn, ok := runs[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn(p)
	writeSnapshot(*jsonDir, *exp)
}

// writeSnapshot dumps the default registry into BENCH_<exp>.json so the
// emitted numbers carry cache hit-rates and tail latencies alongside the
// experiment's printed rows. The registry is cumulative across the
// process, so under -exp all each snapshot subsumes the previous one;
// the "live" experiment is the one that exercises every real layer.
func writeSnapshot(dir, exp string) {
	if dir == "" {
		return
	}
	data := struct {
		Experiment string       `json:"experiment"`
		Metrics    []obs.Metric `json:"metrics"`
	}{exp, obs.Default().Export()}
	b, err := json.MarshalIndent(data, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: snapshot %s: %v\n", exp, err)
		return
	}
	path := filepath.Join(dir, "BENCH_"+exp+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: snapshot %s: %v\n", exp, err)
		return
	}
	fmt.Printf("metrics snapshot: %s\n", path)
}

func table2(p cluster.Params) {
	fmt.Println("== Table 2: read bandwidth and IOPS vs file size (SSD storage cluster) ==")
	fmt.Printf("%-14s %-15s %-14s %-12s\n", "File Size(KB)", "Bandwidth(MB)", "Files/Second", "4K-IOPS")
	for _, r := range cluster.Table2(p) {
		fmt.Printf("%-14d %-15.2f %-14.2f %-12.2f\n", r.FileSizeKB, r.BandwidthMB, r.FilesPerSec, r.IOPS4K)
	}
}

func fig6(p cluster.Params) {
	fmt.Println("== Figure 6: Memcached reading speed under cache-node failures ==")
	fmt.Printf("%-10s %-14s %-10s\n", "iteration", "speed(MB/s)", "hit-ratio")
	for _, r := range cluster.Fig6(p) {
		if r.Iteration%5 == 0 || r.Iteration == 30 || r.Iteration == 70 {
			fmt.Printf("%-10d %-14.1f %-10.3f\n", r.Iteration, r.SpeedMBps, r.HitRatio)
		}
	}
}

func fig9(p cluster.Params) {
	fmt.Println("== Figure 9: write throughput, 64 processes on 4 nodes ==")
	fmt.Printf("%-12s %-12s %-14s\n", "system", "size(KB)", "files/second")
	for _, r := range cluster.Fig9(p) {
		fmt.Printf("%-12s %-12d %-14.0f\n", r.System, r.FileSizeKB, r.FilesPerSec)
	}
	fmt.Printf("ImageNet-1K full write with 64 threads: %.1f s (paper: ~3 s)\n",
		cluster.ImageNetWriteSeconds(p))
}

func fig10a(p cluster.Params) {
	fmt.Println("== Figure 10a: metadata QPS vs client nodes (1/3/5 DIESEL servers) ==")
	fmt.Printf("%-8s %-8s %-12s\n", "servers", "nodes", "QPS")
	for _, r := range cluster.Fig10a(p) {
		fmt.Printf("%-8d %-8d %-12.0f\n", r.Servers, r.ClientNodes, r.QPS)
	}
}

func fig10b(p cluster.Params) {
	fmt.Println("== Figure 10b: metadata QPS with snapshots (linear scaling) ==")
	fmt.Printf("%-8s %-14s\n", "nodes", "QPS")
	for _, r := range cluster.Fig10b(p) {
		fmt.Printf("%-8d %-14.3e\n", r.ClientNodes, r.QPS)
	}
}

func fig10c(p cluster.Params) {
	fmt.Println("== Figure 10c: ls -R / ls -lR elapsed time on ImageNet-1K ==")
	fmt.Printf("%-14s %-12s %-12s\n", "system", "ls -R (s)", "ls -lR (s)")
	for _, r := range cluster.Fig10c(p) {
		fmt.Printf("%-14s %-12.1f %-12.1f\n", r.System, r.LsRSeconds, r.LsLRSeconds)
	}
}

func fig11a(p cluster.Params) {
	fmt.Println("== Figure 11a: 4KB random-read QPS vs client nodes ==")
	fmt.Printf("%-14s %-8s %-12s\n", "system", "nodes", "QPS")
	for _, r := range cluster.Fig11a(p) {
		if r.ClientNodes == 1 || r.ClientNodes == 5 || r.ClientNodes == 10 {
			fmt.Printf("%-14s %-8d %-12.0f\n", r.System, r.ClientNodes, r.QPS)
		}
	}
}

func fig11b(p cluster.Params) {
	fmt.Println("== Figure 11b: cache loading / recovery time (ImageNet-1K) ==")
	fmt.Printf("%-11s %-12s %-14s %-10s\n", "system", "time(s)", "batch(s)", "hit-ratio")
	for _, r := range cluster.Fig11b(p) {
		if int(r.TimeSeconds)%10 == 0 || r.HitRatio >= 1 {
			fmt.Printf("%-11s %-12.1f %-14.3f %-10.3f\n", r.System, r.TimeSeconds, r.BatchSeconds, r.HitRatio)
		}
	}
}

func fig12(p cluster.Params) {
	fmt.Println("== Figure 12: read bandwidth with chunk-wise shuffle (10 nodes, 160 threads) ==")
	fmt.Printf("%-14s %-10s %-16s %-14s %-10s\n", "system", "size(KB)", "bandwidth(MB/s)", "files/second", "vs Lustre")
	for _, r := range cluster.Fig12(p) {
		fmt.Printf("%-14s %-10d %-16.1f %-14.0f %.1fx\n",
			r.System, r.FileSizeKB, r.BandwidthMB, r.FilesPerSec, r.SpeedupOverL)
	}
}

func fig13(cluster.Params) {
	fmt.Println("== Figure 13: accuracy per epoch, chunk-wise shuffle vs dataset shuffle ==")
	cfg := train.DefaultFig13Config()
	curves := train.Fig13(cfg)
	names := make([]string, 0, len(curves))
	for n := range curves {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-18s", "epoch")
	for _, n := range names {
		fmt.Printf(" %-22s", n)
	}
	fmt.Println()
	for ep := range cfg.Epochs {
		fmt.Printf("%-18d", ep+1)
		for _, n := range names {
			pt := curves[n][ep]
			fmt.Printf(" top1=%.3f top5=%.3f ", pt.Top1, pt.Top5)
		}
		fmt.Println()
	}
	for _, n := range names {
		fmt.Printf("final top-1 (%s): %.3f\n", n, train.FinalAccuracy(curves[n], 3))
	}
}

func ablationTopology(p cluster.Params) {
	fmt.Println("== Ablation: cache interconnect topology (Figure 7's p×(n−1) design) ==")
	fmt.Printf("%-14s %-8s %-14s %-14s %-16s\n", "design", "nodes", "clients/node", "connections", "mean read (µs)")
	for _, r := range cluster.AblationTopology(p) {
		fmt.Printf("%-14s %-8d %-14d %-14d %-16.1f\n", r.Design, r.Nodes, r.ClientsPerNod, r.Connections, r.MeanReadUS)
	}
}

func ablationGroup(cluster.Params) {
	fmt.Println("== Ablation: chunk-wise shuffle group size vs accuracy and cache footprint ==")
	cfg := train.DefaultFig13Config()
	rows := train.GroupSizeSweep(cfg, []int{1, 2, 5, 15, 30, 60})
	fmt.Printf("%-12s %-12s %-18s %-18s\n", "group", "final top-1", "batch diversity", "working set (chunks)")
	for _, r := range rows {
		g := fmt.Sprintf("%d", r.GroupSize)
		if r.GroupSize == 0 {
			g = "full-shuffle"
		}
		fmt.Printf("%-12s %-12.3f %-18.3f %-18d\n", g, r.FinalTop1, r.BatchDiversity, r.WorkingSetChunks)
	}
	fmt.Printf("random-permutation diversity ceiling: %.3f\n", train.RandomOrderDiversity(cfg))
}

func fig14(cluster.Params) {
	fmt.Println("== Figure 14: data access time per iteration (first 10 epochs) ==")
	lustre, diesel := train.PaperIO()
	const iters = 50 // reduced for printing; paper uses 5005
	lp := train.Fig14(lustre, 10, iters)
	dp := train.Fig14(diesel, 10, iters)
	fmt.Printf("%-8s %-8s %-14s %-16s\n", "epoch", "iter", "Lustre(s)", "DIESEL-FUSE(s)")
	for i := 0; i < len(lp); i += 10 {
		fmt.Printf("%-8d %-8d %-14.3f %-16.3f\n", lp[i].Epoch, lp[i].Iter, lp[i].DataSeconds, dp[i].DataSeconds)
	}
	fmt.Printf("ResNet-50 per-run saving: %.0f s (~%.1f h; paper: ~10 h)\n",
		train.ResNet50SavingsSeconds(), train.ResNet50SavingsSeconds()/3600)
}

func fig15(cluster.Params) {
	fmt.Println("== Figure 15: total training time, DIESEL-FUSE vs Lustre ==")
	fmt.Printf("%-12s %-12s %-12s %-14s %-14s %-12s\n",
		"model", "Lustre(h)", "DIESEL(h)", "IO saved(%)", "total saved(%)", "normalized")
	for _, r := range train.Fig15() {
		fmt.Printf("%-12s %-12.1f %-12.1f %-14.0f %-14.1f %-12.2f\n",
			r.Model, r.LustreHours, r.DieselHours, r.IOReductionPct, r.TotalReduction, r.NormalizedDiesel)
	}
}
