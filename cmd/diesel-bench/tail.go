package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"diesel/internal/client"
	"diesel/internal/cluster"
	"diesel/internal/core"
	"diesel/internal/epoch"
	"diesel/internal/objstore"
	"diesel/internal/obs"
)

// tailExp measures what the epoch reader's tail-latency controls buy on a
// real stack with an injected straggler: every 50th object-store read
// takes 10x the modeled latency (one slow disk read in fifty), and the
// per-group stall distribution is compared across an un-faulted baseline,
// the faulted plain reader, and the faulted reader with hedging,
// deadlines and a reorder window on. The acceptance shape: hedged p99
// within ~2x the un-faulted baseline, while the plain faulted reader eats
// the full straggler latency.
func tailExp(cluster.Params) {
	fmt.Println("== tail: hedged+reordered epoch reads vs a 1-in-50 10x-slow store read ==")
	throttle := &objstore.Throttled{Latency: 2 * time.Millisecond}
	dep, err := core.Deploy(core.Config{Throttle: throttle})
	if err != nil {
		log.Fatalf("tail: deploy: %v", err)
	}
	defer dep.Close()

	const (
		dataset   = "bench-tail"
		numFiles  = 512
		fileSize  = 4 << 10
		slowEvery = 50
		slowExtra = 18 * time.Millisecond // 2ms base -> 20ms: a 10x read
	)
	wcl, err := client.Connect(client.Options{
		User: "bench", Servers: dep.ServerAddrs(), Dataset: dataset,
		ChunkTarget: 16 << 10,
	})
	if err != nil {
		log.Fatalf("tail: connect: %v", err)
	}
	payload := make([]byte, fileSize)
	for i := range numFiles {
		if err := wcl.Put(fmt.Sprintf("cls%02d/img%04d.jpg", i%8, i), payload); err != nil {
			log.Fatalf("tail: put: %v", err)
		}
	}
	if err := wcl.Flush(); err != nil {
		log.Fatalf("tail: flush: %v", err)
	}
	wcl.Close()

	cl, err := client.Connect(client.Options{
		User: "bench", Servers: dep.ServerAddrs(), Dataset: dataset,
	})
	if err != nil {
		log.Fatalf("tail: connect: %v", err)
	}
	defer cl.Close()
	snap, err := cl.DownloadSnapshot()
	if err != nil {
		log.Fatalf("tail: snapshot: %v", err)
	}

	// compute models the training step between samples (the GPU work the
	// pipeline hides group fetches behind). With it, a healthy window=2
	// pipeline fully hides the ~2.5ms group fetch (so baseline stalls are
	// scheduler jitter), while a 20ms straggler still blows through the
	// window — exactly the exposure hedging is supposed to cap. Sleep
	// overshoot (timer slack) only adds hiding, never stall.
	const compute = 250 * time.Microsecond

	// One run = one epoch at window=2; stall samples are the durations of
	// the Next calls that crossed a group boundary (where the consumer
	// actually waits on the pipeline).
	run := func(faulted bool, opts ...epoch.Option) (stalls []time.Duration, total time.Duration) {
		if faulted {
			throttle.SetSlowEvery(slowEvery, slowExtra)
			defer throttle.SetSlowEvery(0, 0)
		}
		plan, err := cl.ShufflePlan(7, 1)
		if err != nil {
			log.Fatalf("tail: shuffle: %v", err)
		}
		r := epoch.NewReader(plan, snap, epoch.NewClientSource(cl.DefaultDataset(), snap, 4),
			append([]epoch.Option{epoch.WithWindow(2)}, opts...)...)
		defer r.Close()
		begin := time.Now()
		files, lastGroup := 0, -1
		for {
			start := time.Now()
			s, err := r.Next()
			if err != nil {
				break
			}
			if s.Group != lastGroup {
				stalls = append(stalls, time.Since(start))
				lastGroup = s.Group
			}
			files++
			time.Sleep(compute)
		}
		total = time.Since(begin)
		if err := r.Err(); err != nil {
			log.Fatalf("tail: epoch: %v", err)
		}
		if files != numFiles {
			log.Fatalf("tail: served %d of %d files", files, numFiles)
		}
		return stalls, total
	}

	q := func(stalls []time.Duration, p float64) time.Duration {
		s := append([]time.Duration(nil), stalls...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		i := int(p * float64(len(s)))
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}

	counter := func(name string) float64 {
		for _, m := range obs.Default().Export() {
			if m.Name == name {
				return m.Value
			}
		}
		return 0
	}

	tailOpts := []epoch.Option{
		epoch.WithHedge(nil),
		epoch.WithHedgeDelayFloor(500 * time.Microsecond),
		epoch.WithGroupDeadline(150 * time.Millisecond),
		epoch.WithReorderWindow(2),
	}

	run(false) // warm connections and caches so the baseline tail is steady-state

	hedges0, wins0 := counter("diesel_epoch_hedges_total"), counter("diesel_epoch_hedge_wins_total")
	fmt.Printf("%-26s %10s %10s %10s %12s\n", "configuration", "p50 stall", "p99 stall", "max stall", "epoch time")
	base, baseTotal := run(false)
	basep99 := q(base, 0.99)
	fmt.Printf("%-26s %10v %10v %10v %12v\n", "no fault (baseline)",
		q(base, 0.50).Round(time.Microsecond), basep99.Round(time.Microsecond),
		q(base, 1).Round(time.Microsecond), baseTotal.Round(time.Millisecond))

	plain, plainTotal := run(true)
	fmt.Printf("%-26s %10v %10v %10v %12v  (p99 %.1fx baseline)\n", "1-in-50 slow, plain",
		q(plain, 0.50).Round(time.Microsecond), q(plain, 0.99).Round(time.Microsecond),
		q(plain, 1).Round(time.Microsecond), plainTotal.Round(time.Millisecond),
		float64(q(plain, 0.99))/float64(basep99))

	hedged, hedgedTotal := run(true, tailOpts...)
	fmt.Printf("%-26s %10v %10v %10v %12v  (p99 %.1fx baseline)\n", "1-in-50 slow, hedged",
		q(hedged, 0.50).Round(time.Microsecond), q(hedged, 0.99).Round(time.Microsecond),
		q(hedged, 1).Round(time.Microsecond), hedgedTotal.Round(time.Millisecond),
		float64(q(hedged, 0.99))/float64(basep99))
	fmt.Printf("hedges issued %d, won %d (reissue via same servers after adaptive delay, floor 500µs)\n",
		int(counter("diesel_epoch_hedges_total")-hedges0),
		int(counter("diesel_epoch_hedge_wins_total")-wins0))
}
