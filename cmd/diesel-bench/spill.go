package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"diesel/internal/client"
	"diesel/internal/cluster"
	"diesel/internal/core"
	"diesel/internal/dcache"
	"diesel/internal/objstore"
	"diesel/internal/obs"
)

// spillExp measures what the RAM → local-SSD spill tier buys when the
// cache cannot hold the working set: a task whose per-master capacity is
// 25% of the dataset reads epochs against a 2 ms throttled store, first
// without spill (every evicted chunk is refetched from the store each
// epoch) and then with it (evicted chunks come back by local pread).
// A third phase restarts the task over the same spill directory and
// shows the warm-restart story: the first epoch after the restart is
// served almost entirely from local disk, not the servers — the
// Figure 11b recovery ramp collapsed to disk bandwidth.
//
// The acceptance shape (gated by the CI memory-constrained smoke and
// recorded in EXPERIMENTS.md): spill-enabled steady-state epoch read
// throughput at least 3x the no-spill refetch baseline, and the
// restarted task serving >= 90% of its first epoch locally.
func spillExp(cluster.Params) {
	fmt.Println("== spill: two-level dcache (RAM -> local-SSD) vs refetch, 25% RAM, 2ms store ==")
	throttle := &objstore.Throttled{Latency: 2 * time.Millisecond}
	dep, err := core.Deploy(core.Config{Throttle: throttle})
	if err != nil {
		log.Fatalf("spill: deploy: %v", err)
	}
	defer dep.Close()

	const (
		dataset     = "bench-spill"
		numFiles    = 256
		fileSize    = 8 << 10
		chunkTarget = 32 << 10
	)
	totalBytes := int64(numFiles) * fileSize
	capacity := totalBytes / 4 // RAM holds a quarter of the dataset

	wcl, err := client.Connect(client.Options{
		User: "bench", Servers: dep.ServerAddrs(), Dataset: dataset,
		ChunkTarget: chunkTarget,
	})
	if err != nil {
		log.Fatalf("spill: connect: %v", err)
	}
	payload := make([]byte, fileSize)
	names := make([]string, numFiles)
	for i := range numFiles {
		names[i] = fmt.Sprintf("cls%02d/img%04d.jpg", i%8, i)
		if err := wcl.Put(names[i], payload); err != nil {
			log.Fatalf("spill: put: %v", err)
		}
	}
	if err := wcl.Flush(); err != nil {
		log.Fatalf("spill: flush: %v", err)
	}
	snap, err := wcl.DownloadSnapshot()
	if err != nil {
		log.Fatalf("spill: snapshot: %v", err)
	}
	numChunks := len(snap.Chunks)
	wcl.Close()

	spillDir, err := os.MkdirTemp("", "diesel-bench-spill-*")
	if err != nil {
		log.Fatalf("spill: tempdir: %v", err)
	}
	defer os.RemoveAll(spillDir)

	chunkLoads := func(t *core.Task) uint64 {
		var n uint64
		for _, p := range t.Peers {
			n += p.Stats.ChunkLoads.Load()
		}
		return n
	}
	// One epoch = every file once, in order; sequential chunk access with
	// a 25% LRU is the refetch worst case the spill tier exists to fix.
	epochMBps := func(t *core.Task, label string, epoch int) float64 {
		loads0 := chunkLoads(t)
		start := time.Now()
		for _, name := range names {
			if _, err := t.Peers[0].ReadFile(name); err != nil {
				log.Fatalf("spill: %s read %s: %v", label, name, err)
			}
		}
		el := time.Since(start)
		mbps := float64(totalBytes) / el.Seconds() / 1e6
		sp := t.Peers[0].SpillStats()
		fmt.Printf("%-22s %6d %12v %10.1f %12d %11d\n",
			label, epoch, el.Round(time.Millisecond), mbps, chunkLoads(t)-loads0, sp.Hits)
		return mbps
	}

	fmt.Printf("dataset: %d files x %d B = %d B in %d chunks; cache capacity %d B (25%%)\n",
		numFiles, fileSize, totalBytes, numChunks, capacity)
	fmt.Printf("%-22s %6s %12s %10s %12s %11s\n",
		"phase", "epoch", "time", "MB/s", "chunk-loads", "spill-hits")

	// Phase 1: capacity-bound cache, no spill — steady state refetches.
	base, err := dep.StartTask(core.TaskConfig{
		Dataset: dataset, Nodes: 1, ClientsPerNode: 1,
		Policy: dcache.OnDemand, CapacityBytes: capacity,
		JobID: "spill-base",
	})
	if err != nil {
		log.Fatalf("spill: start baseline task: %v", err)
	}
	epochMBps(base, "no spill", 1)
	baseMBps := epochMBps(base, "no spill", 2)
	base.Close()

	// Phase 2: same capacity with the spill tier — epoch 1 demotes the
	// overflow to local disk, epoch 2 reads it back by pread.
	spilled, err := dep.StartTask(core.TaskConfig{
		Dataset: dataset, Nodes: 1, ClientsPerNode: 1,
		Policy: dcache.OnDemand, CapacityBytes: capacity,
		JobID: "spill-on", SpillDir: spillDir,
	})
	if err != nil {
		log.Fatalf("spill: start spill task: %v", err)
	}
	epochMBps(spilled, "spill", 1)
	spillMBps := epochMBps(spilled, "spill", 2)
	// Graceful stop: push the RAM-resident remainder down too, so the
	// restarted task can rewarm the whole working set from local disk.
	for _, p := range spilled.Peers {
		p.DemoteAll()
	}
	spilled.Close()

	// Phase 3: restart over the same spill directory — the warm restart.
	warm, err := dep.StartTask(core.TaskConfig{
		Dataset: dataset, Nodes: 1, ClientsPerNode: 1,
		Policy: dcache.OnDemand, CapacityBytes: capacity,
		JobID: "spill-warm", SpillDir: spillDir,
	})
	if err != nil {
		log.Fatalf("spill: restart task: %v", err)
	}
	rewarmChunks, rewarmBytes := warm.Peers[0].Rewarmed()
	warmMBps := epochMBps(warm, "warm restart", 1)
	warmLoads := chunkLoads(warm)
	localFrac := 1 - float64(warmLoads)/float64(numChunks)
	warm.Close()

	speedup := spillMBps / baseMBps
	fmt.Printf("spill speedup: %.1fx over refetch baseline (%.1f vs %.1f MB/s; acceptance >= 3x)\n",
		speedup, spillMBps, baseMBps)
	fmt.Printf("warm restart: rewarmed %d chunks (%d B) from manifest; %.0f%% of first epoch served locally (%d server loads of %d chunks)\n",
		rewarmChunks, rewarmBytes, 100*localFrac, warmLoads, numChunks)

	g := func(phase string) *obs.Gauge {
		return obs.Default().Gauge("diesel_bench_spill_read_mbps",
			"Epoch read throughput of the spill experiment by phase (MB/s).",
			obs.L("phase", phase))
	}
	g("baseline").Set(int64(baseMBps))
	g("spill").Set(int64(spillMBps))
	g("warm-restart").Set(int64(warmMBps))
	obs.Default().Gauge("diesel_bench_spill_speedup_x10",
		"Spill vs refetch epoch throughput speedup, tenths (42 = 4.2x).").
		Set(int64(speedup * 10))
	obs.Default().Gauge("diesel_bench_spill_warm_local_pct",
		"Percent of the restarted task's first epoch served without server loads.").
		Set(int64(100 * localFrac))
}
