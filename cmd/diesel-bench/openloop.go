package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"diesel/internal/cluster"
	"diesel/internal/loadgen"
)

// openLoop is the coordinated-omission-safe counterpart of the "live"
// experiment: instead of workers reading back-to-back (whose latencies
// are service times — a stall slows the loop, not the percentiles), it
// delegates to internal/loadgen, which offers a fixed 800 op/s Poisson
// schedule to the same kind of embedded stack and measures every read
// from its *intended* start. The run includes a 2s disk-slow window so
// the two disciplines can be compared directly: here the window visibly
// lifts the open-loop phase p99; in a closed loop it mostly vanishes
// into reduced throughput. cmd/diesel-load exposes the full harness
// (rates, mixes, fault schedules, JSON reports).
func openLoop(cluster.Params) {
	fmt.Println("== open-loop: fixed-rate arrival schedule against a real stack (tails include queueing) ==")
	st, err := loadgen.StartStack(loadgen.StackConfig{
		Files:       240,
		FileSizeB:   4 << 10,
		DiskLatency: time.Millisecond,
		Clients:     4,
	})
	if err != nil {
		log.Fatalf("open-loop: stack: %v", err)
	}
	defer st.Close()

	ops, err := st.Ops("get=6,batch=2,chunk=1")
	if err != nil {
		log.Fatalf("open-loop: %v", err)
	}
	sched, err := st.ParseSchedule("4s+2s:disk-slow:10ms")
	if err != nil {
		log.Fatalf("open-loop: %v", err)
	}
	rep, err := st.RunEmbedded(context.Background(), loadgen.Config{
		Rate:     800,
		Duration: 8 * time.Second,
		Arrival:  loadgen.Poisson,
		Seed:     1,
		Ops:      ops,
		Faults:   sched,
	})
	if err != nil {
		log.Fatalf("open-loop: run: %v", err)
	}
	rep.Summary(os.Stdout)
}
