package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"testing"
	"time"

	"diesel/internal/client"
	"diesel/internal/cluster"
	"diesel/internal/core"
	"diesel/internal/dcache"
	"diesel/internal/epoch"
	"diesel/internal/etcd"
	"diesel/internal/objstore"
	"diesel/internal/obs"
	"diesel/internal/server"
	"diesel/internal/wire"
)

// Allocation gauges on the default registry, so a -json snapshot of this
// experiment records the hot read path's allocation budget alongside the
// throughput metrics (the numbers the zero-copy work of DESIGN.md §5b is
// judged by):
//
//	diesel_bench_allocs_per_op{path}  allocations per operation
//	diesel_bench_bytes_per_op{path}   allocated bytes per operation
//
// with path ∈ {"wire-roundtrip", "dcache-hit-view", "dcache-hit-copy",
// "dcache-spill-view", "epoch-read"}.
func publishAllocs(path string, r testing.BenchmarkResult) {
	obs.Default().Gauge("diesel_bench_allocs_per_op",
		"Allocations per operation on a hot-path benchmark.",
		obs.L("path", path)).Set(r.AllocsPerOp())
	obs.Default().Gauge("diesel_bench_bytes_per_op",
		"Allocated bytes per operation on a hot-path benchmark.",
		obs.L("path", path)).Set(r.AllocedBytesPerOp())
	fmt.Printf("%-18s %10d ops %10d allocs/op %12d B/op %12v/op\n",
		path, r.N, r.AllocsPerOp(), r.AllocedBytesPerOp(),
		(r.T / time.Duration(max(r.N, 1))).Round(time.Nanosecond))
}

// spillTempDir makes a throwaway spill directory; the alloc experiment
// is a one-shot process, so cleanup rides on the OS temp dir.
func spillTempDir() string {
	dir, err := os.MkdirTemp("", "diesel-alloc-spill-*")
	if err != nil {
		log.Fatalf("alloc: spill dir: %v", err)
	}
	return dir
}

// allocExp measures allocs/op and B/op on the three hot read paths —
// wire round-trip, dcache local hit (view and copy), epoch read over the
// 2 ms store — using testing.Benchmark, and publishes them as gauges so
// `diesel-bench -exp alloc -json .` leaves a BENCH_alloc.json snapshot.
// The CI allocation guard (cmd/benchguard) watches the equivalent
// `go test -benchmem` numbers; this experiment is the runnable,
// deployment-shaped view of the same budget.
func allocExp(cluster.Params) {
	fmt.Println("== alloc: hot read path allocation budget (see also cmd/benchguard) ==")

	// --- wire round-trip: one echo RPC over loopback TCP ---
	{
		srv := wire.NewServer()
		srv.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatalf("alloc: wire listen: %v", err)
		}
		cl, err := wire.Dial(addr)
		if err != nil {
			log.Fatalf("alloc: wire dial: %v", err)
		}
		payload := bytes.Repeat([]byte("x"), 1<<10)
		publishAllocs("wire-roundtrip", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				if _, err := cl.Call("echo", payload); err != nil {
					b.Fatal(err)
				}
			}
		}))
		cl.Close()
		srv.Close()
	}

	// --- dcache local hit: single-node peer with every chunk resident ---
	{
		core := server.NewLocalStack()
		rpc, err := server.NewRPC(core, "127.0.0.1:0")
		if err != nil {
			log.Fatalf("alloc: rpc: %v", err)
		}
		defer rpc.Close()
		addrs := []string{rpc.Addr()}
		w, err := client.Connect(client.Options{Servers: addrs, Dataset: "alloc", ChunkTarget: 1 << 20})
		if err != nil {
			log.Fatalf("alloc: connect: %v", err)
		}
		const nFiles, fileSize = 64, 4 << 10
		names := make([]string, nFiles)
		data := make([]byte, fileSize)
		for i := range nFiles {
			names[i] = fmt.Sprintf("cls%02d/img%05d.jpg", i%5, i)
			if err := w.Put(names[i], data); err != nil {
				log.Fatalf("alloc: put: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			log.Fatalf("alloc: close writer: %v", err)
		}
		cl, err := client.Connect(client.Options{Servers: addrs, Dataset: "alloc"})
		if err != nil {
			log.Fatalf("alloc: connect reader: %v", err)
		}
		defer cl.Close()
		if _, err := cl.DownloadSnapshot(); err != nil {
			log.Fatalf("alloc: snapshot: %v", err)
		}
		p, err := dcache.Join(cl.DefaultDataset(), etcd.InProcess{R: etcd.NewRegistry()}, dcache.Config{
			TaskID: "alloc", NodeID: "node0", Rank: 0, TotalClients: 1, Policy: dcache.OnDemand,
		})
		if err != nil {
			log.Fatalf("alloc: join: %v", err)
		}
		defer p.Close()
		if err := p.LoadOwned(); err != nil {
			log.Fatalf("alloc: load: %v", err)
		}
		ctx := context.Background()
		publishAllocs("dcache-hit-view", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; b.Loop(); i++ {
				if _, err := p.ReadFileViewContext(ctx, names[i%len(names)]); err != nil {
					b.Fatal(err)
				}
			}
		}))
		publishAllocs("dcache-hit-copy", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; b.Loop(); i++ {
				if _, err := p.ReadFile(names[i%len(names)]); err != nil {
					b.Fatal(err)
				}
			}
		}))

		// Spill-tier read: a second peer whose whole working set lives on
		// local disk (promotion off), so every view is one pread. The
		// budget gated by cmd/benchguard is <= 2 allocs/op on this path.
		sp, err := dcache.Join(cl.DefaultDataset(), etcd.InProcess{R: etcd.NewRegistry()}, dcache.Config{
			TaskID: "alloc-spill", NodeID: "node0", Rank: 0, TotalClients: 1, Policy: dcache.OnDemand,
			SpillDir: spillTempDir(), SpillPromoteAfter: -1,
		})
		if err != nil {
			log.Fatalf("alloc: join spill peer: %v", err)
		}
		defer sp.Close()
		if err := sp.LoadOwned(); err != nil {
			log.Fatalf("alloc: load spill peer: %v", err)
		}
		sp.DemoteAll()
		publishAllocs("dcache-spill-view", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; b.Loop(); i++ {
				if _, err := sp.ReadFileViewContext(ctx, names[i%len(names)]); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// --- epoch read: one chunk-wise epoch against the 2 ms store ---
	{
		dep, err := core.Deploy(core.Config{
			Throttle: &objstore.Throttled{Latency: 2 * time.Millisecond},
		})
		if err != nil {
			log.Fatalf("alloc: deploy: %v", err)
		}
		defer dep.Close()
		w, err := client.Connect(client.Options{
			User: "bench", Servers: dep.ServerAddrs(), Dataset: "alloc-epoch",
			ChunkTarget: 8 << 10,
		})
		if err != nil {
			log.Fatalf("alloc: connect: %v", err)
		}
		const files, fileSize = 128, 2 << 10
		data := make([]byte, fileSize)
		for i := range files {
			if err := w.Put(fmt.Sprintf("c%02d/f%05d", i%8, i), data); err != nil {
				log.Fatalf("alloc: put: %v", err)
			}
		}
		w.Close()
		cl, err := client.Connect(client.Options{
			User: "bench", Servers: dep.ServerAddrs(), Dataset: "alloc-epoch",
		})
		if err != nil {
			log.Fatalf("alloc: connect reader: %v", err)
		}
		defer cl.Close()
		snap, err := cl.DownloadSnapshot()
		if err != nil {
			log.Fatalf("alloc: snapshot: %v", err)
		}
		publishAllocs("epoch-read", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; b.Loop(); i++ {
				plan, err := cl.ShufflePlan(int64(i), 4)
				if err != nil {
					b.Fatal(err)
				}
				r := epoch.NewReader(plan, snap, epoch.NewClientSource(cl.DefaultDataset(), snap, 4),
					epoch.WithWindow(2))
				n := 0
				for {
					if _, err := r.Next(); err != nil {
						break
					}
					n++
				}
				r.Close()
				if r.Err() != nil {
					b.Fatal(r.Err())
				}
				if n != files {
					b.Fatalf("epoch served %d of %d files", n, files)
				}
			}
		}))
	}
}
