package diesel

// End-to-end integration test: the full networked pipeline a DLT job
// exercises, every component over real loopback TCP — write, snapshot,
// distributed cache, chunk-wise shuffled epochs, FUSE reads, failure
// injection on the metadata database and a cache master, and recovery.

import (
	"encoding/binary"
	"fmt"
	"io/fs"
	"math"
	"sync"
	"testing"

	"diesel/internal/client"
	"diesel/internal/core"
	"diesel/internal/dcache"
	"diesel/internal/fuselite"
	"diesel/internal/lustre"
	"diesel/internal/meta"
	"diesel/internal/shuffle"
	"diesel/internal/trace"
	"diesel/internal/train"
)

func TestEndToEndTrainingPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dep, err := core.Deploy(core.Config{KVNodes: 3, DieselServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	// 1. Data preparation: concurrent writers, verified contents.
	spec := trace.Spec{Name: "e2e", NumFiles: 600, Classes: 12, MeanFileSize: 2048, SizeSpread: 0.5, Seed: 13}
	if err := trace.Write(spec, func(w int) (trace.Putter, error) {
		return dep.NewClient(spec.Name, 100+w)
	}, 4); err != nil {
		t.Fatal(err)
	}

	// 2. DLT task: 3 nodes × 2 I/O workers, oneshot cache.
	task, err := dep.StartTask(core.TaskConfig{
		Dataset: spec.Name, Nodes: 3, ClientsPerNode: 2, Policy: dcache.Oneshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer task.Close()
	for _, p := range task.Peers {
		if p.IsMaster() {
			if err := p.LoadOwned(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// 3. Two chunk-wise shuffled epochs with different seeds, all workers
	//    reading their stride, every byte verified.
	snap := task.Clients[0].Snapshot()
	for epoch := range 2 {
		plan := shuffle.ChunkWisePlan(snap, int64(epoch), 3)
		order := make([]int, len(plan.Files))
		for i, fi := range plan.Files {
			var idx int
			name := snap.FileName(int(fi))
			if _, err := parseIndex(name, &idx); err != nil {
				t.Fatalf("cannot parse %q: %v", name, err)
			}
			order[i] = idx
		}
		if err := trace.ReadOrder(spec, func(w int) (trace.Getter, error) {
			return task.Clients[w%len(task.Clients)], nil
		}, len(task.Clients), order); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}

	// 4. FUSE view over a task client: walk + read.
	fsys, err := fuselite.Mount(fuselite.Config{Clients: []*client.Client{task.Clients[1]}})
	if err != nil {
		t.Fatal(err)
	}
	walked := 0
	err = fs.WalkDir(fsys, "train", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			walked++
		}
		return nil
	})
	if err != nil || walked != spec.NumFiles {
		t.Fatalf("FUSE walk: %d files, %v", walked, err)
	}
	b, err := fsys.ReadFile(spec.FileName(7))
	if err != nil || spec.Verify(7, b) != nil {
		t.Fatalf("FUSE read: %v", err)
	}

	// 5. Failure injection: wipe the metadata database entirely, recover
	//    from chunks, and keep reading (new client, fresh snapshot).
	for _, kv := range dep.KVServers() {
		kv.Wipe()
	}
	if _, err := dep.Server().RecoverMetadata(spec.Name, 0); err != nil {
		t.Fatal(err)
	}
	fresh, err := dep.NewClient(spec.Name, 999)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, err := fresh.DownloadSnapshot(); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Get(spec.FileName(123))
	if err != nil || spec.Verify(123, got) != nil {
		t.Fatalf("post-recovery read: %v", err)
	}

	// 6. Kill a cache master; surviving workers still read everything.
	var dead *dcache.Peer
	for _, p := range task.Peers {
		if p.IsMaster() {
			dead = p
		}
	}
	dead.Close()
	for i := 0; i < spec.NumFiles; i += 37 {
		b, err := task.Clients[0].Get(spec.FileName(i))
		if err != nil {
			t.Fatalf("read after master death: %v", err)
		}
		if err := spec.Verify(i, b); err != nil {
			t.Fatal(err)
		}
	}
}

// parseIndex extracts the trailing file index from a trace file name
// (train/cNNNN/imgNNNNNNN.bin).
func parseIndex(name string, out *int) (int, error) {
	var class int
	return fmt.Sscanf(name, "train/c%04d/img%07d.bin", &class, out)
}

// TestSnapshotDistributionViaSharedFS covers §4.1.3's operational note:
// "users can save snapshots in a distributed file system (e.g., Lustre),
// where all nodes can access them concurrently" — the snapshot is stored
// once in the shared-FS model and loaded concurrently by many clients.
func TestSnapshotDistributionViaSharedFS(t *testing.T) {
	dep, err := core.Deploy(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	spec := trace.Spec{Name: "ds", NumFiles: 200, Classes: 4, MeanFileSize: 512, Seed: 4}
	if err := trace.Write(spec, func(w int) (trace.Putter, error) {
		return dep.NewClient("ds", w)
	}, 2); err != nil {
		t.Fatal(err)
	}
	builder, err := dep.NewClient("ds", 50)
	if err != nil {
		t.Fatal(err)
	}
	defer builder.Close()
	snap, err := builder.DownloadSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	shared := lustre.New(lustre.Config{MDTs: 2, OSTs: 4, DNE: lustre.DNE1})
	if err := shared.Create("snapshots/ds.snap", snap.Encode()); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := shared.Read("snapshots/ds.snap")
			if err != nil {
				errs <- err
				return
			}
			s2, err := meta.DecodeSnapshot(b)
			if err != nil {
				errs <- err
				return
			}
			if s2.NumFiles() != spec.NumFiles {
				errs <- fmt.Errorf("node loaded %d files", s2.NumFiles())
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestTrainModelFromDieselStorage is the end-to-end capstone: the
// training samples themselves are stored in DIESEL as small files, and a
// real model is trained by streaming epochs through the full stack —
// chunk-wise shuffle → train.Loader prefetch pipeline → task-grained
// distributed cache → DIESEL server → chunked object storage — decoding
// sample bytes on the way. Accuracy proves every byte arrived intact and
// in a usable order.
func TestTrainModelFromDieselStorage(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const (
		dim     = 8
		classes = 4
		samples = 1200
	)
	ds := train.MakeClusters(samples, dim, classes, 0.5, 11)

	// Encode each sample as one file: dim float32s + 1 label byte.
	encode := func(i int) []byte {
		b := make([]byte, dim*4+1)
		for j, v := range ds.X[i] {
			binary.LittleEndian.PutUint32(b[j*4:], math.Float32bits(v))
		}
		b[dim*4] = byte(ds.Y[i])
		return b
	}

	dep, err := core.Deploy(core.Config{KVNodes: 2, DieselServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	w, err := dep.NewClient("samples", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		// Class-sorted names in write order: the adversarial layout.
		if err := w.Put(fmt.Sprintf("c%d/s%06d", ds.Y[i], i), encode(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	task, err := dep.StartTask(core.TaskConfig{
		Dataset: "samples", Nodes: 2, ClientsPerNode: 2, Policy: dcache.Oneshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer task.Close()
	cl := task.Clients[0]
	snap := cl.Snapshot()

	m := train.NewMLP(dim, 16, classes, 7)
	decoded := &train.SynthDataset{Classes: classes, Dim: dim}
	decodedIdx := map[string]int32{}
	for epoch := range 6 {
		plan, err := cl.ShufflePlan(int64(epoch), 3)
		if err != nil {
			t.Fatal(err)
		}
		order := plan.Paths(snap)
		loader := train.NewLoader(cl.Get, order, train.LoaderConfig{Workers: 4, BatchSize: 32})
		for {
			b, ok, err := loader.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			batch := make([]int32, 0, len(b.Paths))
			for j, path := range b.Paths {
				raw := b.Data[j]
				if len(raw) != dim*4+1 {
					t.Fatalf("sample %q has %d bytes", path, len(raw))
				}
				idx, seen := decodedIdx[path]
				if !seen {
					x := make([]float32, dim)
					for k := range x {
						x[k] = math.Float32frombits(binary.LittleEndian.Uint32(raw[k*4:]))
					}
					idx = int32(len(decoded.Y))
					decoded.X = append(decoded.X, x)
					decoded.Y = append(decoded.Y, int(raw[dim*4]))
					decodedIdx[path] = idx
				}
				batch = append(batch, idx)
			}
			m.TrainBatch(decoded, batch, 0.15)
		}
		loader.Close()
	}
	if len(decoded.Y) != samples {
		t.Fatalf("decoded %d of %d samples", len(decoded.Y), samples)
	}
	if snap.NumFiles() != samples {
		t.Fatalf("snapshot has %d files", snap.NumFiles())
	}
	acc := train.TopKAccuracy(m, decoded, 1)
	if acc < 0.9 {
		t.Errorf("model trained through the full stack reached top-1 = %.3f", acc)
	}
	t.Logf("trained from DIESEL storage: top-1 = %.3f over %d samples, 6 epochs", acc, samples)
}
