package diesel

// Repository-level benchmarks: one Benchmark per table/figure of the
// paper (measuring the *real* implementations at laptop scale — the
// simulated cluster-scale counterparts live in cmd/diesel-bench), plus
// the ablation benchmarks DESIGN.md §5 calls out.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"diesel/internal/chunk"
	"diesel/internal/client"
	"diesel/internal/core"
	"diesel/internal/dcache"
	"diesel/internal/epoch"
	"diesel/internal/fuselite"
	"diesel/internal/kvstore"
	"diesel/internal/lustre"
	"diesel/internal/memcached"
	"diesel/internal/meta"
	"diesel/internal/objstore"
	"diesel/internal/server"
	"diesel/internal/shuffle"
	"diesel/internal/train"
)

// --- shared fixtures ---

func randBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func newGen() *chunk.IDGenerator {
	return chunk.NewIDGeneratorAt([6]byte{1, 2, 3, 4, 5, 6}, 1, func() uint32 { return 1000 })
}

// localServer builds an in-process DIESEL server with a dataset of n
// files of the given size loaded.
func localServer(b *testing.B, dataset string, n, fileSize, chunkTarget int) (*server.Server, []string) {
	b.Helper()
	return loadedServer(b, objstore.NewMemory(), dataset, n, fileSize, chunkTarget)
}

// loadedServer is localServer over an arbitrary object store.
func loadedServer(b *testing.B, store objstore.Store, dataset string, n, fileSize, chunkTarget int) (*server.Server, []string) {
	b.Helper()
	s := server.New(kvstore.NewLocal(), store, func() int64 { return time.Now().UnixNano() })
	gen := newGen()
	builder := chunk.NewBuilder(chunkTarget, gen, func() int64 { return 1 })
	names := make([]string, n)
	data := randBytes(fileSize, 5)
	for i := range n {
		names[i] = fmt.Sprintf("c%03d/f%06d.bin", i%100, i)
		full, err := builder.Add(names[i], data)
		if err != nil {
			b.Fatal(err)
		}
		if full {
			_, enc, _ := builder.Seal()
			if _, err := s.Ingest(dataset, enc); err != nil {
				b.Fatal(err)
			}
		}
	}
	if builder.Count() > 0 {
		_, enc, _ := builder.Seal()
		if _, err := s.Ingest(dataset, enc); err != nil {
			b.Fatal(err)
		}
	}
	return s, names
}

// --- Table 2: chunk size amortises per-file cost ---

// BenchmarkTable2ReadBandwidth measures real read throughput from a disk
// object store as the object size varies — the effect Table 2 reports:
// per-object overhead dominates small reads, bandwidth dominates large.
func BenchmarkTable2ReadBandwidth(b *testing.B) {
	for _, kb := range []int{4, 64, 1024, 4096} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			dir := b.TempDir()
			disk, err := objstore.NewDisk(dir)
			if err != nil {
				b.Fatal(err)
			}
			const objects = 32
			data := randBytes(kb<<10, 1)
			for i := range objects {
				disk.Put(fmt.Sprintf("o%04d", i), data)
			}
			b.SetBytes(int64(kb) << 10)
			b.ResetTimer()
			for i := 0; b.Loop(); i++ {
				if _, err := disk.Get(fmt.Sprintf("o%04d", i%objects)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 9: write path comparison ---
//
// These three benches exercise the real write paths at different
// transport levels (DIESEL ingest in-process, memcached over loopback
// TCP, the Lustre model's in-process bookkeeping), so their numbers are
// not directly comparable to each other; the apples-to-apples Figure 9
// comparison with modeled cluster hardware is `diesel-bench -exp fig9`.

// BenchmarkFig9WriteDiesel writes 4 KB files through the real chunk
// builder + ingest path.
func BenchmarkFig9WriteDiesel(b *testing.B) {
	s := server.NewLocalStack()
	builder := chunk.NewBuilder(chunk.DefaultTargetSize, newGen(), func() int64 { return 1 })
	data := randBytes(4096, 2)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		full, err := builder.Add(fmt.Sprintf("f%09d", i), data)
		if err != nil {
			b.Fatal(err)
		}
		if full {
			_, enc, _ := builder.Seal()
			if _, err := s.Ingest("ds", enc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig9WriteMemcached writes 4 KB objects one blocking RPC each
// through the real memcached cluster — the baseline's per-op write cost.
func BenchmarkFig9WriteMemcached(b *testing.B) {
	srv, err := memcached.NewServer("127.0.0.1:0", 0)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	r, err := memcached.NewRouter([]string{srv.Addr()})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	data := randBytes(4096, 3)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		if err := r.Set(fmt.Sprintf("f%09d", i), data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9WriteLustre writes 4 KB files through the Lustre model's
// create path (MDS + lock + OSS per file).
func BenchmarkFig9WriteLustre(b *testing.B) {
	c := lustre.New(lustre.Config{MDTs: 2, OSTs: 4, DNE: lustre.DNE1})
	data := randBytes(4096, 4)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		if err := c.Create(fmt.Sprintf("d%03d/f%09d", i%50, i), data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 10a/10b: metadata paths ---

// BenchmarkFig10aServerStat measures stat through the server + KV path
// (the pre-snapshot metadata cost of Figure 10a).
func BenchmarkFig10aServerStat(b *testing.B) {
	s, names := localServer(b, "ds", 2000, 256, 1<<16)
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		if _, err := s.Stat("ds", names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10bSnapshotQPS measures a stat against a loaded metadata
// snapshot — the real per-op cost behind Figure 10b's linear scaling
// (~1.8 µs/op in the paper's calibration; see cluster.Params).
func BenchmarkFig10bSnapshotQPS(b *testing.B) {
	s, names := localServer(b, "ds", 20000, 64, 1<<18)
	snap, err := s.BuildSnapshot("ds")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		if _, err := snap.Stat(names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10cWalkSnapshot is the ls -lR analogue: a full recursive
// walk with sizes over a loaded snapshot.
func BenchmarkFig10cWalkSnapshot(b *testing.B) {
	s, _ := localServer(b, "ds", 20000, 64, 1<<18)
	snap, err := s.BuildSnapshot("ds")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		n := 0
		snap.Walk("", func(string, meta.FileMeta) bool { n++; return true })
		if n != 20000 {
			b.Fatal("walk incomplete")
		}
	}
}

// --- Figure 11a: read path comparison (real loopback stacks) ---

// BenchmarkFig11aReadAPI reads 4 KB files through the full networked
// stack: libDIESEL → task-grained cache → peer/server.
func BenchmarkFig11aReadAPI(b *testing.B) {
	dep, task, names := benchTask(b, 512, 4096)
	defer dep.Close()
	defer task.Close()
	cl := task.Clients[1]
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		if _, err := cl.Get(names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11aReadFUSE reads the same files through the FUSE layer.
func BenchmarkFig11aReadFUSE(b *testing.B) {
	dep, task, names := benchTask(b, 512, 4096)
	defer dep.Close()
	defer task.Close()
	fsys, err := fuselite.Mount(fuselite.Config{Clients: []*client.Client{task.Clients[1]}})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		if _, err := fsys.ReadFile(names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTask(b *testing.B, n, fileSize int) (*core.Deployment, *core.Task, []string) {
	b.Helper()
	dep, err := core.Deploy(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	w, err := dep.NewClient("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, n)
	data := randBytes(fileSize, 6)
	for i := range n {
		names[i] = fmt.Sprintf("c%02d/f%05d", i%10, i)
		if err := w.Put(names[i], data); err != nil {
			b.Fatal(err)
		}
	}
	w.Close()
	task, err := dep.StartTask(core.TaskConfig{
		Dataset: "bench", Nodes: 2, ClientsPerNode: 2, Policy: dcache.Oneshot,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range task.Peers {
		if p.IsMaster() {
			p.LoadOwned()
		}
	}
	return dep, task, names
}

// --- Figure 11b: cache load at chunk vs file granularity ---

// BenchmarkFig11bChunkLoad measures loading a dataset partition into the
// cache chunk-by-chunk (DIESEL's recovery path).
func BenchmarkFig11bChunkLoad(b *testing.B) {
	dep, task, _ := benchTask(b, 1024, 2048)
	defer dep.Close()
	defer task.Close()
	var master *dcache.Peer
	for _, p := range task.Peers {
		if p.IsMaster() {
			master = p
			break
		}
	}
	b.ResetTimer()
	for b.Loop() {
		master.DropAll()
		if err := master.LoadOwned(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11bFileLoad measures filling the memcached baseline
// file-by-file — the slow recovery of Figure 11b.
func BenchmarkFig11bFileLoad(b *testing.B) {
	srv, err := memcached.NewServer("127.0.0.1:0", 0)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	r, err := memcached.NewRouter([]string{srv.Addr()})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	const files = 512
	data := randBytes(2048, 7)
	b.ResetTimer()
	for b.Loop() {
		for i := range files {
			if err := r.Set(fmt.Sprintf("f%05d", i), data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 12: chunk-wise shuffle read efficiency ---

// BenchmarkFig12ReadBandwidth reads a full epoch in chunk-wise shuffled
// order through the request executor, measuring delivered bytes.
func BenchmarkFig12ReadBandwidth(b *testing.B) {
	s, _ := localServer(b, "ds", 4096, 1024, 64<<10)
	snap, err := s.BuildSnapshot("ds")
	if err != nil {
		b.Fatal(err)
	}
	plan := shuffle.ChunkWisePlan(snap, 1, 8)
	b.SetBytes(int64(snap.TotalBytes()))
	b.ResetTimer()
	for b.Loop() {
		// Read group by group, batched — the access pattern the shuffle
		// produces.
		for _, g := range plan.Groups {
			paths := make([]string, 0, g.End-g.Start)
			for _, fi := range plan.Files[g.Start:g.End] {
				paths = append(paths, snap.FileName(int(fi)))
			}
			if _, err := s.GetFiles("ds", paths); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkShuffleGenerate measures generating a chunk-wise epoch order
// for an ImageNet-scale file count — the §4.3 claim that the shuffle's
// footprint is tiny.
func BenchmarkShuffleGenerate(b *testing.B) {
	sb := meta.NewSnapshotBuilder("big", 1)
	const files = 1_281_167
	const perChunk = 37 // ≈4MB / 110KB
	for c := 0; c*perChunk < files; c++ {
		var id chunk.ID
		id[0], id[1], id[2] = byte(c>>16), byte(c>>8), byte(c)
		ci := sb.AddChunk(id, 4<<20, 128)
		for j := 0; j < perChunk && c*perChunk+j < files; j++ {
			i := c*perChunk + j
			sb.AddFile(fmt.Sprintf("f/%07d", i), meta.FileMeta{ChunkIdx: ci, Index: uint32(j), Length: 110 << 10})
		}
	}
	snap := sb.Build()
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		p := shuffle.ChunkWisePlan(snap, int64(i), 500)
		if p.NumFiles() != files {
			b.Fatal("bad plan")
		}
	}
}

// --- Figure 13: training-step cost of the real models ---

// BenchmarkFig13TrainEpoch measures one training epoch of the Figure 13
// MLP under the chunk-wise order.
func BenchmarkFig13TrainEpoch(b *testing.B) {
	ds := train.MakeClusters(2000, 16, 10, 1.8, 1)
	snap := train.DatasetSnapshot(ds.N(), 50)
	cw := train.ChunkWise{Snap: snap, GroupSize: 15, Seed: 1}
	m := train.NewMLP(16, 24, 10, 1)
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		train.TrainEpoch(m, ds, cw.EpochOrder(i), 32, 0.2)
	}
}

// --- recovery (§4.1.2) ---

// BenchmarkRecoveryScan measures rebuilding the metadata database from
// self-contained chunks (scenario b).
func BenchmarkRecoveryScan(b *testing.B) {
	obj := objstore.NewMemory()
	kv := kvstore.NewLocal()
	s := server.New(kv, obj, func() int64 { return time.Now().UnixNano() })
	builder := chunk.NewBuilder(64<<10, newGen(), func() int64 { return 1 })
	data := randBytes(512, 8)
	for i := range 2000 {
		full, _ := builder.Add(fmt.Sprintf("f%06d", i), data)
		if full {
			_, enc, _ := builder.Seal()
			s.Ingest("ds", enc)
		}
	}
	if builder.Count() > 0 {
		_, enc, _ := builder.Seal()
		s.Ingest("ds", enc)
	}
	b.ResetTimer()
	for b.Loop() {
		kv.FlushAll()
		if _, err := s.RecoverMetadata("ds", 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (DESIGN.md §5) ---

// BenchmarkAblationChunkSize sweeps the chunk size: larger chunks
// amortise per-chunk costs on the write path but raise read
// amplification for single-file reads.
func BenchmarkAblationChunkSize(b *testing.B) {
	for _, mb := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("%dMB", mb), func(b *testing.B) {
			s := server.NewLocalStack()
			builder := chunk.NewBuilder(mb<<20, newGen(), func() int64 { return 1 })
			data := randBytes(4096, 9)
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; b.Loop(); i++ {
				full, _ := builder.Add(fmt.Sprintf("f%09d", i), data)
				if full {
					_, enc, _ := builder.Seal()
					if _, err := s.Ingest("ds", enc); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationExecutorMerge compares the request executor with and
// without sort-and-merge on a full-dataset batch, against two backends:
// an in-memory store (where merging only changes copying and merge-off
// can win) and a latency-bound store modelling a networked object store
// at 100 µs per request — where merging collapses hundreds of range
// reads into a few chunk reads and wins by an order of magnitude. The
// executor exists for the second case.
func BenchmarkAblationExecutorMerge(b *testing.B) {
	backends := []struct {
		name  string
		store func() objstore.Store
		files int
	}{
		{"mem", func() objstore.Store { return objstore.NewMemory() }, 1024},
		{"latency100us", func() objstore.Store {
			return &objstore.Throttled{Base: objstore.NewMemory(), Latency: 100 * time.Microsecond}
		}, 128},
	}
	for _, be := range backends {
		for _, merge := range []bool{true, false} {
			name := be.name + "/merge-off"
			if merge {
				name = be.name + "/merge-on"
			}
			b.Run(name, func(b *testing.B) {
				s, names := loadedServer(b, be.store(), "ds", be.files, 1024, 64<<10)
				s.Exec.Merge = merge
				b.SetBytes(int64(len(names)) * 1024)
				b.ResetTimer()
				for b.Loop() {
					if _, err := s.GetFiles("ds", names); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationSnapshotVsServer compares the two metadata paths
// directly (the essence of Figure 10a vs 10b).
func BenchmarkAblationSnapshotVsServer(b *testing.B) {
	s, names := localServer(b, "ds", 4096, 128, 1<<18)
	snap, err := s.BuildSnapshot("ds")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("snapshot", func(b *testing.B) {
		for i := 0; b.Loop(); i++ {
			if _, err := snap.Stat(names[i%len(names)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("server", func(b *testing.B) {
		for i := 0; b.Loop(); i++ {
			if _, err := s.Stat("ds", names[i%len(names)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGroupSize sweeps the chunk-wise shuffle group size:
// bigger groups shuffle better but need more cache memory.
func BenchmarkAblationGroupSize(b *testing.B) {
	s, _ := localServer(b, "ds", 8192, 256, 32<<10)
	snap, err := s.BuildSnapshot("ds")
	if err != nil {
		b.Fatal(err)
	}
	for _, g := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("g%d", g), func(b *testing.B) {
			for i := 0; b.Loop(); i++ {
				p := shuffle.ChunkWisePlan(snap, int64(i), g)
				if p.NumFiles() != snap.NumFiles() {
					b.Fatal("bad plan")
				}
			}
		})
	}
}

// --- core data-structure benches ---

// BenchmarkChunkBuildSeal measures chunk packing throughput.
func BenchmarkChunkBuildSeal(b *testing.B) {
	data := randBytes(110<<10, 10)
	b.SetBytes(110 << 10)
	gen := newGen()
	builder := chunk.NewBuilder(chunk.DefaultTargetSize, gen, func() int64 { return 1 })
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		full, err := builder.Add(fmt.Sprintf("f%09d", i), data)
		if err != nil {
			b.Fatal(err)
		}
		if full {
			builder.Seal()
		}
	}
}

// BenchmarkChunkParse measures decoding a sealed 4 MB chunk.
func BenchmarkChunkParse(b *testing.B) {
	gen := newGen()
	builder := chunk.NewBuilder(chunk.DefaultTargetSize, gen, func() int64 { return 1 })
	data := randBytes(4096, 11)
	for i := 0; !builder.Full(); i++ {
		builder.Add(fmt.Sprintf("f%06d", i), data)
	}
	_, enc, _ := builder.Seal()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for b.Loop() {
		if _, err := chunk.Parse(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKVStoreOps measures the metadata store's raw set/get/scan.
func BenchmarkKVStoreOps(b *testing.B) {
	st := kvstore.NewStore()
	for i := range 10000 {
		st.Set(fmt.Sprintf("k%06d", i), []byte("v"))
	}
	b.Run("get", func(b *testing.B) {
		for i := 0; b.Loop(); i++ {
			st.Get(fmt.Sprintf("k%06d", i%10000))
		}
	})
	b.Run("set", func(b *testing.B) {
		for i := 0; b.Loop(); i++ {
			st.Set(fmt.Sprintf("n%09d", i), []byte("v"))
		}
	})
	b.Run("pscan100", func(b *testing.B) {
		for b.Loop() {
			keys, _ := st.ScanPrefix("k0001")
			if len(keys) < 100 {
				b.Fatal("scan short")
			}
		}
	})
}

// BenchmarkSnapshotDecode measures loading a snapshot from its on-disk
// form (the client start-up cost §4.1.3 trades for local metadata).
func BenchmarkSnapshotDecode(b *testing.B) {
	s, _ := localServer(b, "ds", 50000, 64, 1<<20)
	snap, err := s.BuildSnapshot("ds")
	if err != nil {
		b.Fatal(err)
	}
	enc := snap.Encode()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for b.Loop() {
		if _, err := meta.DecodeSnapshot(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpochRead streams one chunk-wise shuffled epoch through the
// real stack — libDIESEL RPCs against a deployment whose object store
// models 2 ms of request latency — comparing the synchronous reader
// (window=0, every group fetch exposed) with the pipelined reader
// (window>=2, fetches overlap consumption). The acceptance bar is the
// pipelined configuration sustaining at least 2x the samples/s.
func BenchmarkEpochRead(b *testing.B) {
	dep, err := core.Deploy(core.Config{
		Throttle: &objstore.Throttled{Latency: 2 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	w, err := client.Connect(client.Options{
		User: "bench", Key: "bench",
		Servers: dep.ServerAddrs(), Dataset: "epoch",
		ChunkTarget: 8 << 10, // ~4 files per chunk: many chunks, many groups
	})
	if err != nil {
		b.Fatal(err)
	}
	const files, fileSize = 256, 2048
	data := randBytes(fileSize, 12)
	for i := range files {
		if err := w.Put(fmt.Sprintf("c%02d/f%05d", i%8, i), data); err != nil {
			b.Fatal(err)
		}
	}
	w.Close()
	cl, err := client.Connect(client.Options{
		User: "bench", Key: "bench",
		Servers: dep.ServerAddrs(), Dataset: "epoch",
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	snap, err := cl.DownloadSnapshot()
	if err != nil {
		b.Fatal(err)
	}
	for _, window := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			b.SetBytes(files * fileSize)
			for i := 0; b.Loop(); i++ {
				plan, err := cl.ShufflePlan(int64(i), 4)
				if err != nil {
					b.Fatal(err)
				}
				r := epoch.NewReader(plan, snap, epoch.NewClientSource(cl.DefaultDataset(), snap, 4),
					epoch.WithWindow(window))
				n := 0
				for {
					if _, err := r.Next(); err != nil {
						break
					}
					n++
				}
				r.Close()
				if r.Err() != nil {
					b.Fatal(r.Err())
				}
				if n != files {
					b.Fatalf("epoch served %d of %d files", n, files)
				}
			}
			b.ReportMetric(float64(files)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// BenchmarkLoaderEpoch measures the pipelined data loader (Figure 1's
// DataLoader pattern) streaming a full epoch through the task-grained
// cache over loopback TCP.
func BenchmarkLoaderEpoch(b *testing.B) {
	dep, task, names := benchTask(b, 512, 2048)
	defer dep.Close()
	defer task.Close()
	cl := task.Clients[1]
	b.SetBytes(int64(len(names)) * 2048)
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		l := train.NewLoader(cl.Get, names, train.LoaderConfig{Workers: 8, BatchSize: 32})
		for {
			_, ok, err := l.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		l.Close()
	}
}
